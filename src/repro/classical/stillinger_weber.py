"""Stillinger–Weber classical potential for silicon.

F. H. Stillinger and T. A. Weber, *Phys. Rev. B* **31**, 5262 (1985) —
*the* classical silicon potential, and the cost baseline every TBMD paper
quotes ("tight binding costs 10²–10³ × classical MD").  Implemented with
analytic forces and the same calculator interface as
:class:`~repro.tb.calculator.TBCalculator`, so the MD driver, relaxers
and benchmarks can swap it in directly (ablation A6).

Energy:

.. math::

    E = \\sum_{i<j} \\varepsilon f_2(r_{ij}/σ)
      + \\sum_{i,\\,j<k} \\varepsilon λ\\,
        e^{γσ/(r_{ij}-aσ)} e^{γσ/(r_{ik}-aσ)}
        (\\cos θ_{jik} + 1/3)^2

with the published parameter set (A, B, p, q, a, λ, γ, σ, ε).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.neighbors.verlet import VerletList
from repro.units import EV_PER_A3_TO_GPA
from repro.utils.timing import PhaseTimer


class StillingerWeber:
    """SW silicon calculator (energy, analytic forces, virial).

    Duck-type compatible with :class:`~repro.tb.calculator.TBCalculator`:
    ``compute(atoms, forces=True)`` returns the same core result keys.
    """

    # published parameters
    A = 7.049556277
    B = 0.6022245584
    P = 4.0
    Q = 0.0
    a = 1.80
    LAMBDA = 21.0
    GAMMA = 1.20
    SIGMA = 2.0951          # Å
    EPSILON = 2.1683        # eV

    species = ("Si",)
    name = "stillinger-weber"

    def __init__(self, skin: float = 0.5):
        self.cutoff = self.a * self.SIGMA            # 3.771 Å
        self.timer = PhaseTimer()
        self._vlist = VerletList(rcut=self.cutoff, skin=skin)
        self._cache_key = None
        self._results: dict = {}

    # -- two-body -------------------------------------------------------------
    def _pair_terms(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """ε·f₂(r/σ) and its radial derivative (r strictly inside cutoff)."""
        x = r / self.SIGMA
        expo = np.exp(1.0 / (x - self.a))
        poly = self.A * (self.B * x ** (-self.P) - x ** (-self.Q))
        e2 = self.EPSILON * poly * expo
        dpoly = self.A * (-self.P * self.B * x ** (-self.P - 1)
                          + self.Q * x ** (-self.Q - 1))
        de2 = self.EPSILON * expo * (dpoly - poly / (x - self.a) ** 2) / self.SIGMA
        return e2, de2

    def _g(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Three-body radial factor exp(γσ/(r − aσ)) and derivative."""
        denom = r - self.a * self.SIGMA
        g = np.exp(self.GAMMA * self.SIGMA / denom)
        dg = -self.GAMMA * self.SIGMA / denom**2 * g
        return g, dg

    # -- main evaluation ----------------------------------------------------------
    def compute(self, atoms, forces: bool = True) -> dict:
        for s in set(atoms.symbols):
            if s not in self.species:
                raise ModelError(f"Stillinger-Weber supports Si only, got {s!r}")
        key = (atoms.positions.tobytes(), atoms.cell.matrix.tobytes())
        if key == self._cache_key:
            return self._results

        with self.timer.phase("neighbors"):
            nl = self._vlist.update(atoms)

        n = len(atoms)
        f = np.zeros((n, 3))
        virial = np.zeros((3, 3))

        with self.timer.phase("pair"):
            # strictly inside the cutoff (f2 → 0 smoothly at x = a)
            inside = nl.distances < self.cutoff - 1e-9
            r = nl.distances[inside]
            vec = nl.vectors[inside]
            i_idx = nl.i[inside]
            j_idx = nl.j[inside]
            e2, de2 = self._pair_terms(r)
            energy = float(e2.sum())
            u = vec / r[:, None]
            g = de2[:, None] * u               # ∂E/∂(bond vector)
            np.add.at(f, i_idx, g)
            np.add.at(f, j_idx, -g)
            virial += np.einsum("pc,pd->cd", g, vec)

        with self.timer.phase("triplet"):
            e3, f3, v3 = self._three_body(atoms, i_idx, j_idx, vec, r, n)
            energy += e3
            f += f3
            virial += v3

        # forces fall out of the energy evaluation for free — always store
        # them so cached energy-only results can still serve get_forces()
        res = {
            "energy": energy,
            "free_energy": energy,
            "band_energy": 0.0,
            "repulsive_energy": energy,
            "forces": f,
            "virial": virial,
        }
        if atoms.cell.fully_periodic:
            vol = atoms.cell.volume
            res["stress"] = virial / vol
            res["pressure"] = float(-np.trace(virial) / (3 * vol))
            res["pressure_gpa"] = res["pressure"] * EV_PER_A3_TO_GPA
        self._cache_key = key
        self._results = res
        return res

    def _three_body(self, atoms, i_idx, j_idx, vec, r, n):
        """Σ_i Σ_{j<k} h(r_ij, r_ik, θ_jik) with analytic gradients.

        Bond vectors point centre → neighbour; with ``u = r_j − r_i`` the
        chain rule gives ``F_j = −∂E/∂u`` and the centre collects the
        opposite of both partners.
        """
        # full (directed) bond list grouped by central atom
        ci = np.concatenate([i_idx, j_idx])
        cj = np.concatenate([j_idx, i_idx])
        cvec = np.concatenate([vec, -vec])
        cr = np.concatenate([r, r])
        order = np.argsort(ci, kind="stable")
        ci, cj, cvec, cr = ci[order], cj[order], cvec[order], cr[order]
        starts = np.searchsorted(ci, np.arange(n))
        ends = np.searchsorted(ci, np.arange(n) + 1)

        g_all, dg_all = self._g(cr)
        lam_eps = self.LAMBDA * self.EPSILON

        energy = 0.0
        forces = np.zeros((n, 3))
        virial = np.zeros((3, 3))
        for i in range(n):
            s, e = starts[i], ends[i]
            nb = e - s
            if nb < 2:
                continue
            v = cvec[s:e]                     # (nb, 3), i → neighbour
            rr = cr[s:e]
            gg = g_all[s:e]
            dgg = dg_all[s:e]
            idx = cj[s:e]                     # partner atom indices
            uhat = v / rr[:, None]
            cosm = uhat @ uhat.T              # (nb, nb)
            ju, ku = np.triu_indices(nb, k=1)
            c = cosm[ju, ku]
            w = c + 1.0 / 3.0
            pref = lam_eps * gg[ju] * gg[ku]
            energy += float(np.sum(pref * w * w))

            # dE/du = λε (c+1/3)² g_k g'_j û_j + 2λε g_j g_k (c+1/3) ∂c/∂u
            # with ∂c/∂u = (û_k − c û_j)/|u|
            dc_du = (uhat[ku] - c[:, None] * uhat[ju]) / rr[ju][:, None]
            dc_dv = (uhat[ju] - c[:, None] * uhat[ku]) / rr[ku][:, None]
            du = (lam_eps * (w * w) * gg[ku] * dgg[ju])[:, None] * uhat[ju] \
                + (2.0 * pref * w)[:, None] * dc_du
            dv = (lam_eps * (w * w) * gg[ju] * dgg[ku])[:, None] * uhat[ku] \
                + (2.0 * pref * w)[:, None] * dc_dv

            forces[i] += (du + dv).sum(axis=0)
            np.subtract.at(forces, idx[ju], du)
            np.subtract.at(forces, idx[ku], dv)
            virial += np.einsum("pc,pd->cd", du, v[ju]) \
                + np.einsum("pc,pd->cd", dv, v[ku])
        return energy, forces, virial

    # -- convenience getters ----------------------------------------------------
    def get_potential_energy(self, atoms) -> float:
        return self.compute(atoms, forces=False)["energy"]

    def get_forces(self, atoms) -> np.ndarray:
        return self.compute(atoms, forces=True)["forces"]

    def get_stress(self, atoms) -> np.ndarray:
        res = self.compute(atoms, forces=True)
        if "stress" not in res:
            raise ModelError("stress requires a fully periodic cell")
        return res["stress"]

    def get_pressure(self, atoms) -> float:
        res = self.compute(atoms, forces=True)
        if "pressure" not in res:
            raise ModelError("pressure requires a fully periodic cell")
        return res["pressure"]

    def describe(self) -> str:
        return (f"{self.name}: classical 2+3-body silicon potential, "
                f"cutoff {self.cutoff:.3f} Å")

    def __repr__(self) -> str:
        return "<StillingerWeber>"

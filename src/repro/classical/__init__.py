"""Classical interatomic potentials — the speed baseline TBMD is judged
against (the era's papers quote "TB costs 10²–10³× classical MD")."""

from repro.classical.stillinger_weber import StillingerWeber

__all__ = ["StillingerWeber"]

"""Deterministic random-number helpers.

Every stochastic component (velocity initialisation, Langevin noise,
rattle displacements, workload generators) accepts either a seed or a
``numpy.random.Generator``; this module centralises the coercion so results
are reproducible end-to-end from a single integer.
"""

from __future__ import annotations

import numpy as np


def default_rng(seed=None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int``, or an existing generator
    (returned unchanged so callers can thread one generator through a whole
    simulation).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* independent child generators.

    Used by the process-pool backend so each worker gets its own stream.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]

"""Small shared utilities: timing, table formatting, RNG, validation."""

from repro.utils.timing import Timer, PhaseTimer, timed
from repro.utils.tables import Table, format_series
from repro.utils.rng import default_rng
from repro.utils.validation import (
    as_float_array,
    check_positive,
    check_shape,
)

__all__ = [
    "Timer",
    "PhaseTimer",
    "timed",
    "Table",
    "format_series",
    "default_rng",
    "as_float_array",
    "check_positive",
    "check_shape",
]

"""Input validation helpers used across the public API surface.

These raise early with specific messages instead of letting NumPy produce a
confusing broadcast error three stack frames deeper.
"""

from __future__ import annotations

import numpy as np


def as_float_array(x, name: str, shape: tuple | None = None) -> np.ndarray:
    """Coerce *x* to a C-contiguous float64 array, optionally checking shape.

    ``shape`` entries of ``-1`` match any extent.
    """
    arr = np.ascontiguousarray(x, dtype=float)
    if shape is not None:
        check_shape(arr, name, shape)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_shape(arr: np.ndarray, name: str, shape: tuple) -> None:
    """Validate ``arr.shape`` against *shape* (``-1`` is a wildcard)."""
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {arr.shape}"
        )
    for got, want in zip(arr.shape, shape):
        if want != -1 and got != want:
            raise ValueError(
                f"{name} must have shape {shape} (-1 = any), got {arr.shape}"
            )


def check_positive(value: float, name: str, strict: bool = True) -> float:
    """Validate a scalar is positive (or non-negative when not *strict*)."""
    v = float(value)
    if strict and not v > 0.0:
        raise ValueError(f"{name} must be > 0, got {v}")
    if not strict and v < 0.0:
        raise ValueError(f"{name} must be >= 0, got {v}")
    return v

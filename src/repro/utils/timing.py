"""Lightweight timing instrumentation.

The SC'94-style evaluation needs per-phase wall-clock breakdowns of an MD
step (neighbours / H build / diagonalisation / forces / integration).
:class:`PhaseTimer` accumulates named phases with negligible overhead; the
calculator and MD driver accept one optionally so instrumentation never
contaminates the hot path when not requested.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

from repro.obs import spans as _spans


def tick() -> float:
    """The one sanctioned duration clock: ``perf_counter`` seconds.

    Every ``dt = tick() - t0`` in the codebase measures on the same
    monotonic clock the span timeline is built from, so hand-measured
    durations and span durations agree exactly.  Call sites outside
    ``repro.obs`` / this module must use this (the clock-discipline
    lint rule enforces it) rather than ``time.perf_counter()`` —
    one indirection point keeps the clock swappable and greppable.
    """
    return time.perf_counter()


def wall_now() -> float:
    """Span-aligned wall-clock seconds since the epoch.

    Returns the tracer's epoch anchor plus the monotonic delta — the
    exact timestamp arithmetic :mod:`repro.obs.spans` stamps on spans —
    instead of a fresh ``time.time()`` read, so wall-clock fields in
    results and artifacts land on the same timeline as the trace even
    if NTP steps the system clock mid-run.
    """
    return _spans._EPOCH_OFFSET + time.perf_counter()


@dataclass
class Timer:
    """A resettable stopwatch accumulating total elapsed seconds."""

    elapsed: float = 0.0
    calls: int = 0
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer not running")
        dt = time.perf_counter() - self._start
        self.elapsed += dt
        self.calls += 1
        self._start = None
        return dt

    def reset(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def mean(self) -> float:
        """Mean seconds per call (0.0 before any call completes)."""
        return self.elapsed / self.calls if self.calls else 0.0


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time for named phases.

    Example
    -------
    >>> pt = PhaseTimer()
    >>> with pt.phase("diag"):
    ...     pass
    >>> "diag" in pt.timers
    True
    """

    timers: dict[str, Timer] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[Timer]:
        """Time one phase; doubles as a span adapter.

        When tracing is enabled (:mod:`repro.obs`), each phase also opens
        a span of the same name, so the calculators' existing
        ``self.timer.phase("foe")`` call sites emit a hierarchical trace
        with no further instrumentation.  With tracing off the extra cost
        is one attribute check.
        """
        timer = self.timers.setdefault(name, Timer())
        if _spans._TRACER.enabled:
            with _spans.span(name):
                timer.start()
                try:
                    yield timer
                finally:
                    timer.stop()
            return
        timer.start()
        try:
            yield timer
        finally:
            timer.stop()

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated in phase *name* (0.0 if never entered)."""
        t = self.timers.get(name)
        return t.elapsed if t is not None else 0.0

    def total(self) -> float:
        """Sum over all phases."""
        return sum(t.elapsed for t in self.timers.values())

    def fractions(self) -> dict[str, float]:
        """Per-phase fraction of the total (empty dict if nothing timed)."""
        tot = self.total()
        if tot <= 0.0:
            return {}
        return {k: t.elapsed / tot for k, t in self.timers.items()}

    def reset(self) -> None:
        for t in self.timers.values():
            t.reset()

    def report(self) -> str:
        """Human-readable multi-line breakdown, longest phase first."""
        rows = sorted(self.timers.items(), key=lambda kv: -kv[1].elapsed)
        tot = self.total() or 1.0
        lines = [f"{'phase':<16}{'seconds':>12}{'share':>9}{'calls':>8}"]
        for name, t in rows:
            lines.append(
                f"{name:<16}{t.elapsed:>12.6f}{t.elapsed / tot:>8.1%}{t.calls:>8d}"
            )
        return "\n".join(lines)


@contextmanager
def timed(label: str,
          sink: "Callable[[str, float], None] | None" = None
          ) -> Iterator[None]:
    """Context manager reporting elapsed seconds for one block.

    With *sink* (a ``sink(label, seconds)`` callable) the measurement
    goes there; otherwise it is logged at INFO level on the
    ``repro.utils.timing`` logger.  It must never print to stdout — the
    CLI's JSON-emitting paths own that stream.
    """
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        if sink is None:
            from repro.log import get_logger
            get_logger(__name__).info("[timed] %s: %.6f s", label, dt)
        else:
            sink(label, dt)

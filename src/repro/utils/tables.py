"""ASCII table / series formatting for the benchmark harness.

The benchmark scripts print the same rows the paper's tables report; this
module keeps the formatting consistent and testable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


class Table:
    """A simple column-aligned ASCII table.

    >>> t = Table(["N", "t_step (s)"])
    >>> t.add_row([64, 0.0123])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str | None = None,
                 float_fmt: str = "{:.4g}"):
        self.headers = [str(h) for h in headers]
        self.title = title
        self.float_fmt = float_fmt
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} entries, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def _fmt(self, v: Any) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return self.float_fmt.format(v)
        return str(v)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "  "
        out = []
        if self.title:
            out.append(self.title)
        out.append(sep.join(h.rjust(w) for h, w in zip(self.headers, widths)))
        out.append(sep.join("-" * w for w in widths))
        for row in self.rows:
            out.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(out)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(xs: Sequence[float], ys: Sequence[float],
                  xlabel: str = "x", ylabel: str = "y",
                  title: str | None = None) -> str:
    """Format a figure series as aligned (x, y) pairs, one per line."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    t = Table([xlabel, ylabel], title=title, float_fmt="{:.6g}")
    for x, y in zip(xs, ys):
        t.add_row([x, y])
    return t.render()


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a crude unicode sparkline, used by example scripts to give a
    sense of a trace without matplotlib (offline environment)."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = list(values)
    if not vals:
        return ""
    if len(vals) > width:
        # average-pool down to `width` buckets
        stride = len(vals) / width
        pooled = []
        for i in range(width):
            lo = int(i * stride)
            hi = max(lo + 1, int((i + 1) * stride))
            chunk = vals[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        vals = pooled
    vmin, vmax = min(vals), max(vals)
    span = vmax - vmin or 1.0
    return "".join(blocks[int((v - vmin) / span * (len(blocks) - 1))] for v in vals)

"""Resident-memory accounting for calculator state.

The batch service keeps many structures' calculators alive at once and
has to decide *which* to evict when a memory budget is exceeded.  The
honest currency for that decision is bytes actually held in numpy
buffers — neighbour-list pair arrays, CSR Hamiltonians, cached density
rows, results dicts — not a hand-tuned per-atom constant that drifts as
the calculators evolve.

:func:`resident_bytes` walks an object graph (``__dict__``, dicts,
lists/tuples/sets, dataclass-ish containers) and sums the ``nbytes`` of
every distinct ``numpy.ndarray`` it can reach, with an id-based visited
set so shared buffers (e.g. a Verlet list handing its pair arrays to the
results dict) are counted once.
"""

from __future__ import annotations

import numpy as np

#: graph-walk depth bound — calculator state is shallow; the bound only
#: guards against pathological self-referential structures
_MAX_DEPTH = 8


def resident_bytes(obj, _visited: set[int] | None = None,
                   _depth: int = 0) -> int:
    """Total bytes of numpy array data reachable from *obj* (deduplicated)."""
    if _visited is None:
        _visited = set()
    if _depth > _MAX_DEPTH or obj is None:
        return 0
    oid = id(obj)
    if oid in _visited:
        return 0
    _visited.add(oid)

    if isinstance(obj, np.ndarray):
        # count the owning buffer once, however many views reach it
        base = obj.base if obj.base is not None else obj
        bid = id(base)
        if bid in _visited and base is not obj:
            return 0
        _visited.add(bid)
        return int(base.nbytes)
    if isinstance(obj, (str, bytes, int, float, complex, bool)):
        return 0

    total = 0
    if isinstance(obj, dict):
        for v in obj.values():
            total += resident_bytes(v, _visited, _depth + 1)
        return total
    if isinstance(obj, (list, tuple, set, frozenset)):
        for v in obj:
            total += resident_bytes(v, _visited, _depth + 1)
        return total

    # scipy sparse matrices and plain objects both expose their arrays
    # through __dict__ / slots; walk whatever attribute dict exists
    d = getattr(obj, "__dict__", None)
    if d is not None:
        total += resident_bytes(d, _visited, _depth + 1)
    for slot in getattr(type(obj), "__slots__", ()) or ():
        if hasattr(obj, slot):
            total += resident_bytes(getattr(obj, slot), _visited, _depth + 1)
    return total

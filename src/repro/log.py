"""Structured logging for the repro package.

One ``repro`` root logger, per-module children via :func:`get_logger`,
and contextvars-carried context fields (worker id, structure id, ...)
that every record in scope picks up automatically::

    log = get_logger(__name__)
    with log_context(worker=wid, structure=sid):
        log.info("evaluated in %.1f ms", dt)
    # ... repro.service.worker [pid 4242 worker=0 structure=si512] evaluated ...

Diagnostics go to **stderr** — never stdout, which several CLI paths
reserve for JSON payloads.  :func:`setup_logging` is called once by the
CLI (``--log-level`` / ``-v``); library code only ever calls
:func:`get_logger` and logs, so importing repro configures nothing.
"""

from __future__ import annotations

import contextlib
import contextvars
import logging
import sys

_LOG_CONTEXT: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_log_context", default=())

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s [pid %(process)d%(ctx)s] %(message)s"

_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
           "warning": logging.WARNING, "error": logging.ERROR,
           "critical": logging.CRITICAL}


class _ContextFilter(logging.Filter):
    """Injects the contextvars fields as ``record.ctx`` (`` k=v k=v``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        pairs = _LOG_CONTEXT.get()
        record.ctx = "".join(f" {k}={v}" for k, v in pairs) if pairs else ""
        return True


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` root logger (idempotent, import-safe)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


@contextlib.contextmanager
def log_context(**fields):
    """Attach ``k=v`` context fields to every record emitted in scope.

    Backed by a :class:`contextvars.ContextVar`, so it is correct under
    threads and restores on exit even when the body raises.
    """
    token = _LOG_CONTEXT.set(_LOG_CONTEXT.get()
                             + tuple((k, v) for k, v in fields.items()))
    try:
        yield
    finally:
        _LOG_CONTEXT.reset(token)


def level_from_verbosity(verbosity: int) -> int:
    """``-v`` count → level: 0 = WARNING, 1 = INFO, ≥2 = DEBUG."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def parse_level(level: int | str | None) -> int:
    """``"debug"`` / ``"INFO"`` / numeric / None → logging level int."""
    if level is None:
        return logging.WARNING
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[str(level).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from "
            f"{', '.join(_LEVELS)}") from None


def setup_logging(level: int | str | None = None, stream=None) -> logging.Logger:
    """Configure the ``repro`` root logger (idempotent; reuses handler).

    *stream* defaults to ``sys.stderr``.  Returns the root logger so
    callers can tweak it further.
    """
    root = logging.getLogger("repro")
    root.setLevel(parse_level(level))
    handler = next((h for h in root.handlers
                    if getattr(h, "_repro_handler", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_handler = True
        handler.setFormatter(logging.Formatter(_FORMAT))
        handler.addFilter(_ContextFilter())
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    return root

"""Shared calculator-state protocol: *what changed since the last call*.

Every calculator in pytbmd (``TBCalculator``, ``LinearScalingCalculator``,
``DensityMatrixCalculator``) caches expensive per-structure machinery —
neighbour lists, sparse Hamiltonian patterns, localization regions,
Chebyshev spectral windows, the chemical potential.  For the cache to be
both *fast* and *safe*, every calculator needs the same answer to one
question on every ``compute`` call: **what changed since last time?**

:class:`CalculatorState` is that single source of truth.  It snapshots
positions, cell, species and a parameter tuple, and classifies each call
into a :class:`ChangeReport`:

========================  =================================================
change                    consequence (the invalidation contract)
========================  =================================================
nothing                   cached results are returned as-is
positions only            *fast path*: Verlet-list refresh, value-only
                          Hamiltonian rewrite, cached regions/window/μ
cell                      fast path with ``moved=None`` (every matrix
                          element is rewritten — periodic-image bond
                          vectors all change, and k-sampled calculators
                          re-derive Cartesian k from the new cell on
                          every call); the Verlet layer remaps its image
                          shifts exactly, per-k Chebyshev windows are
                          guarded a posteriori, and consumers whose
                          caches are not self-validating (e.g. dense
                          spectral bounds) must reset on
                          ``cell_changed`` themselves
species / natoms          *full reset*: every persistent structure is
                          rebuilt
parameters (kT, order…)   *full reset* of the electronic state
========================  =================================================

MD, the relaxers and the CLI all drive calculators through this one
contract, so a structure mutated by any of them (in place or by
replacement) is always detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass(frozen=True)
class ChangeReport:
    """Classification of one ``observe`` call against the last snapshot.

    Attributes
    ----------
    first_call :
        No snapshot existed (fresh or reset state).
    natoms_changed, species_changed, cell_changed, positions_changed :
        Which structural ingredients differ from the snapshot.
    params_changed :
        The calculator-parameter tuple passed to ``observe`` differs.
    moved :
        Boolean (N,) mask of atoms whose position changed — the input to
        dirty-row Hamiltonian updates.  ``None`` whenever a per-atom
        dirty set cannot be trusted (first call, atom count or species
        changed, or a cell change — which moves every periodic-image
        bond regardless of atomic displacements); consumers treat
        ``None`` as "everything is dirty".
    max_displacement :
        Largest per-atom displacement in Å since the snapshot (0.0 when
        ``moved`` is ``None``).
    snapshot_id :
        Generation counter of the observed state: bumped by every
        observation that *changed* something (including the first), and
        stable across repeated no-change observations.  Calculators
        stamp their results cache with it and treat the cache as valid
        only when the stamp still matches — so a compute that raises
        mid-solve (after the snapshot was taken) can never be mistaken
        for having produced results for the new geometry.
    """

    first_call: bool
    natoms_changed: bool
    species_changed: bool
    cell_changed: bool
    positions_changed: bool
    params_changed: bool
    moved: np.ndarray | None
    max_displacement: float
    snapshot_id: int

    @property
    def any_change(self) -> bool:
        """True when cached *results* must be recomputed."""
        return (self.first_call or self.natoms_changed
                or self.species_changed or self.cell_changed
                or self.positions_changed or self.params_changed)

    @property
    def needs_full_reset(self) -> bool:
        """True when persistent *state* (lists, patterns, windows, μ) is
        stale beyond repair and must be rebuilt from scratch.

        Position-only motion is deliberately excluded — it is exactly the
        change the fast path is built to absorb.  Cell changes are also
        excluded: the Verlet layer remaps image shifts exactly, pattern
        and region caches are validated by pair-array comparison, and the
        Chebyshev window is guarded a posteriori — calculators whose
        caches lack such self-validation check ``cell_changed``
        explicitly.
        """
        return (self.first_call or self.natoms_changed
                or self.species_changed or self.params_changed)


@dataclass
class StructureSnapshot:
    """A restorable copy of one structure's client-visible state.

    The batch service keeps one of these per registered structure —
    *outside* the worker that owns the live ``Atoms``/calculator pair —
    so an evicted or crash-lost structure can always be re-materialized
    into a fresh calculator.  Only client-visible state is captured
    (species, positions, cell, pbc, velocities); calculator caches are
    deliberately not part of it: a re-materialized structure starts cold
    and must reproduce the cold calculator's answers exactly.
    """

    symbols: tuple[str, ...]
    positions: np.ndarray
    cell: np.ndarray
    pbc: tuple[bool, ...]
    velocities: np.ndarray | None = None
    generation: int = field(default=0)

    @classmethod
    def capture(cls, atoms: Any) -> "StructureSnapshot":
        """Deep-copy the client-visible state of *atoms*."""
        vel = np.asarray(atoms.velocities, dtype=float)
        return cls(
            symbols=tuple(atoms.symbols),
            positions=np.array(atoms.positions, dtype=float, copy=True),
            cell=np.array(atoms.cell.matrix, dtype=float, copy=True),
            pbc=tuple(bool(p) for p in atoms.cell.pbc),
            velocities=vel.copy() if np.any(vel) else None,
        )

    def update(self, positions: Any = None, cell: Any = None,
               velocities: Any = None) -> None:
        """Advance the snapshot after a successful mutating request."""
        if positions is not None:
            self.positions = np.array(positions, dtype=float, copy=True)
        if cell is not None:
            self.cell = np.array(cell, dtype=float, copy=True)
        if velocities is not None:
            self.velocities = np.array(velocities, dtype=float, copy=True)
        self.generation += 1

    def materialize(self) -> Any:
        """Rebuild a fresh :class:`~repro.geometry.atoms.Atoms` object."""
        from repro.geometry.atoms import Atoms
        from repro.geometry.cell import Cell

        cell = Cell(self.cell.copy(), pbc=self.pbc)
        return Atoms(list(self.symbols), self.positions.copy(), cell=cell,
                     velocities=None if self.velocities is None
                     else self.velocities.copy())


class CalculatorState:
    """Snapshot-and-diff tracker behind every calculator cache.

    Usage::

        state = CalculatorState()
        report = state.observe(atoms, params=(kT, order))
        if not report.any_change:
            return cached_results
        if report.needs_full_reset:
            rebuild_everything()
        # else: positions-only fast path, report.moved says which atoms

    ``observe`` always *updates* the snapshot (copies, so in-place
    mutation of ``atoms`` between calls is detected).
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Forget the snapshot; the next ``observe`` reports a first call."""
        self._positions: np.ndarray | None = None
        self._cell: np.ndarray | None = None
        self._symbols: tuple[str, ...] | None = None
        self._params: tuple | None = None
        self._snapshot_id: int = 0

    @property
    def snapshot_id(self) -> int:
        """Generation of the current state (0 = no snapshot yet);
        advances only when an observation detects a change."""
        return self._snapshot_id

    def observe(self, atoms: Any, params: tuple = ()) -> ChangeReport:
        """Diff *atoms* (+ *params*) against the snapshot, then update it."""
        pos = np.asarray(atoms.positions, dtype=float)
        cell = np.asarray(atoms.cell.matrix, dtype=float)
        symbols = tuple(atoms.symbols)
        params = tuple(params)

        prev_pos = self._positions
        prev_cell = self._cell
        prev_symbols = self._symbols

        moved: np.ndarray | None = None
        positions_changed = False
        max_disp = 0.0
        if prev_pos is None or prev_cell is None or prev_symbols is None:
            first = True
            natoms_changed = species_changed = False
            cell_changed = params_changed = False
        else:
            first = False
            natoms_changed = len(symbols) != len(prev_symbols)
            species_changed = (not natoms_changed) \
                and symbols != prev_symbols
            cell_changed = not np.array_equal(cell, prev_cell)
            params_changed = params != self._params
            if not (natoms_changed or species_changed):
                delta = pos - prev_pos
                changed_rows = np.any(delta != 0.0, axis=1)
                positions_changed = bool(changed_rows.any())
                if positions_changed:
                    max_disp = float(np.sqrt(
                        np.max(np.einsum("ij,ij->i", delta, delta))))
                if not cell_changed:
                    moved = changed_rows

        self._positions = pos.copy()
        self._cell = cell.copy()
        self._symbols = symbols
        self._params = params
        if (first or natoms_changed or species_changed or cell_changed
                or positions_changed or params_changed):
            self._snapshot_id += 1

        return ChangeReport(
            first_call=first,
            natoms_changed=natoms_changed,
            species_changed=species_changed,
            cell_changed=cell_changed,
            positions_changed=positions_changed,
            params_changed=params_changed,
            moved=moved,
            max_displacement=max_disp,
            snapshot_id=self._snapshot_id,
        )

"""Real work-distributed assembly using a process pool.

This is the *executable* counterpart of the cost models: the same
pair-block decomposition run through ``concurrent.futures``.  Workers are
pure functions of picklable inputs (model + pair geometry chunks), the
master accumulates — exactly the replicated-data assembly step with the
allgather replaced by Python IPC.  The test suite asserts bit-level
agreement with the serial builder; on a multi-core host this gives true
parallel H assembly (the eigensolve stays serial, as in the replicated
strategy).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.errors import ParallelError
from repro.neighbors.base import NeighborList
from repro.parallel.decomposition import block_partition
from repro.tb.hamiltonian import orbital_offsets, pair_species_groups, _scatter_blocks
from repro.tb.slater_koster import sk_blocks


def map_tasks(worker, tasks, nworkers: int = 1, executor=None) -> list:
    """Map a *worker* over *tasks*, preserving order.

    The one dispatch policy every pool consumer shares (H assembly,
    repulsion, the localization-region solves of
    :mod:`repro.linscale.foe_local`, and the per-worker batch fan-out of
    :meth:`repro.service.service.BatchService.submit_many`):

    * ``executor`` given — use it (tests inject serial executors; a caller
      can keep one ``ProcessPoolExecutor`` alive across MD steps; the
      batch service passes a ``ThreadPoolExecutor`` because its worker
      objects are not picklable — any ``concurrent.futures`` executor
      works);
    * ``nworkers == 1`` — run inline, no IPC;
    * otherwise — a fresh ``ProcessPoolExecutor(nworkers)`` (*worker* and
      *tasks* must then be picklable).

    When telemetry is enabled (:mod:`repro.obs`) and execution crosses a
    process boundary, the worker is wrapped so spans/metrics recorded in
    the workers ship back with the results and merge into the parent
    trace (see :mod:`repro.obs.remote`).  Same-process paths (inline,
    thread pools) record straight into the parent's collectors.
    """
    if nworkers < 1:
        raise ParallelError("nworkers must be >= 1")
    if executor is not None:
        if isinstance(executor, ProcessPoolExecutor) and obs.telemetry_active():
            worker = obs.TelemetryWorker(worker)
            return obs.absorb_results(executor.map(worker, tasks))
        return list(executor.map(worker, tasks))
    if nworkers == 1:
        return [worker(t) for t in tasks]
    if obs.telemetry_active():
        worker = obs.TelemetryWorker(worker)
    with ProcessPoolExecutor(max_workers=nworkers) as pool:
        return obs.absorb_results(pool.map(worker, tasks))


def _hopping_block_worker(args):
    """Compute SK blocks for one chunk of one species group (pure)."""
    model, sa, sb, r, u, ni, nj = args
    V, _ = model.hopping(sa, sb, r)
    return sk_blocks(u, V)[:, :ni, :nj]


def _repulsion_worker(args):
    """Compute φ, φ' for one chunk of one species group (pure)."""
    model, sa, sb, r = args
    phi, dphi = model.pair_repulsion(sa, sb, r)
    return phi, dphi


def parallel_build_hamiltonian(atoms, model, nl: NeighborList,
                               nworkers: int = 2, executor=None
                               ) -> np.ndarray:
    """Assemble the Γ-point Hamiltonian with pair chunks fanned out to a
    process pool.  Orthogonal models only (the overlap fan-out would be
    identical).  Returns H; agrees exactly with the serial builder.
    """
    if not model.orthogonal:
        raise ParallelError("pool assembly implemented for orthogonal models")
    if nworkers < 1:
        raise ParallelError("nworkers must be >= 1")
    symbols = atoms.symbols
    model.check_species(symbols)
    offsets, m = orbital_offsets(symbols, model)

    H = np.zeros((m, m))
    for idx, sym in enumerate(symbols):
        e = model.onsite(sym)
        o = offsets[idx]
        H[o:o + len(e), o:o + len(e)][np.diag_indices(len(e))] = e

    tasks = []          # (group meta, chunk pair-indices)
    for (sa, sb), pidx in pair_species_groups(symbols, nl).items():
        ni, nj = model.norb(sa), model.norb(sb)
        for chunk in block_partition(len(pidx), nworkers):
            if len(chunk) == 0:
                continue
            sel = pidx[chunk]
            r = nl.distances[sel]
            u = nl.vectors[sel] / r[:, None]
            tasks.append(((sa, sb, ni, nj, sel),
                          (model, sa, sb, r, u, ni, nj)))

    results = map_tasks(_hopping_block_worker, [t[1] for t in tasks],
                        nworkers=nworkers, executor=executor)

    for (meta, _), blocks in zip(tasks, results):
        sa, sb, ni, nj, sel = meta
        _scatter_blocks(H, blocks, offsets[nl.i[sel]], offsets[nl.j[sel]],
                        ni, nj)
    return H


def parallel_repulsive(atoms, model, nl: NeighborList, nworkers: int = 2,
                       executor=None) -> tuple[float, np.ndarray, np.ndarray]:
    """Repulsive energy/forces with pair φ-evaluation fanned out.

    Phase 1 (parallel): per-chunk φ(r), φ'(r).  Phase 2 (master): embed
    ``x_i = Σφ``, apply f/f', accumulate forces — the same two-phase
    structure a message-passing implementation uses (partial x sums then
    an allreduce).
    """
    if nworkers < 1:
        raise ParallelError("nworkers must be >= 1")
    symbols = atoms.symbols
    n = len(atoms)
    groups = pair_species_groups(symbols, nl)

    tasks = []
    for (sa, sb), pidx in groups.items():
        for chunk in block_partition(len(pidx), nworkers):
            if len(chunk) == 0:
                continue
            sel = pidx[chunk]
            tasks.append(((sa, sb, sel), (model, sa, sb, nl.distances[sel])))

    results = map_tasks(_repulsion_worker, [t[1] for t in tasks],
                        nworkers=nworkers, executor=executor)

    x = np.zeros(n)
    phi_all = np.empty(nl.n_pairs)
    dphi_all = np.empty(nl.n_pairs)
    for (meta, _), (phi, dphi) in zip(tasks, results):
        _, _, sel = meta
        phi_all[sel] = phi
        dphi_all[sel] = dphi
        np.add.at(x, nl.i[sel], phi)
        np.add.at(x, nl.j[sel], phi)

    syms = np.asarray(symbols)
    energy = 0.0
    fprime = np.zeros(n)
    for sym in np.unique(syms):
        mask = syms == sym
        f, df = model.embedding(str(sym), x[mask])
        energy += float(np.sum(f))
        fprime[mask] = df

    forces = np.zeros((n, 3))
    virial = np.zeros((3, 3))
    r = nl.distances
    if nl.n_pairs:
        u = nl.vectors / r[:, None]
        coef = (fprime[nl.i] + fprime[nl.j]) * dphi_all
        g = coef[:, None] * u
        np.add.at(forces, nl.i, g)
        np.add.at(forces, nl.j, -g)
        virial = np.einsum("pc,pd->cd", g, nl.vectors)
    return energy, forces, virial

"""Replicated-data parallel TBMD step: calibrated analytic cost model.

The dominant parallelisation strategy of the era's TBMD codes.  Every rank
holds the full coordinates; atoms (hence Hamiltonian rows, pair loops and
force accumulation) are block-partitioned:

1. neighbour search over the rank's atoms,
2. assemble the H rows of the rank's atoms,
3. **allgather** the row stripes so every rank holds the full H,
4. diagonalise — either *replicated* (every rank runs the full serial
   eigensolver: zero communication, zero speedup — the Amdahl wall) or
   *distributed* (block Jacobi, see :mod:`repro.parallel.jacobi`),
5. build the rank's density-matrix rows and evaluate its pair forces,
6. **allreduce** the force array.

Flop counts per phase are analytic; the host's effective flop rate is
calibrated from measured :class:`~repro.tb.calculator.TBCalculator` phase
timings (:func:`calibrate_step`), so the model reproduces measured serial
times by construction and projects them onto 1994-class machines through a
:class:`~repro.parallel.machine.MachineSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParallelError
from repro.parallel.comm import SimComm
from repro.parallel.machine import MachineSpec
from repro.parallel.jacobi import distributed_jacobi_model


#: Analytic flop-count coefficients (dense real symmetric solver ≈ 10·M³;
#: density matrix ≈ M²·M_occ with M_occ ≈ M/2).
DIAG_FLOPS_COEFF = 10.0
RHO_FLOPS_COEFF = 1.0   # × M³ (2·M·M·(M/2))


@dataclass(frozen=True)
class StepCalibration:
    """Per-phase cost coefficients of one MD step.

    ``flops_*`` values are per-pair / per-atom / per-M³ flop equivalents
    obtained by multiplying measured phase seconds by the calibrated host
    flop rate; they make the model machine-independent.
    """

    host_flops: float          # effective host rate (flop/s) from the diag fit
    flops_neigh_per_atom: float
    flops_build_per_pair: float
    flops_force_per_pair: float
    flops_rep_per_pair: float
    pairs_per_atom: float      # workload geometry (for weak scaling)
    orbitals_per_atom: float

    def system_dims(self, natoms: int) -> tuple[int, float]:
        """(n_orbitals, n_pairs) implied by the calibration workload."""
        return (int(round(self.orbitals_per_atom * natoms)),
                self.pairs_per_atom * natoms)


def calibrate_step(model, sizes=(2, 3), repeats: int = 2,
                   temperature_rattle: float = 0.05) -> StepCalibration:
    """Measure per-phase timings on diamond supercells and fit coefficients.

    Parameters
    ----------
    sizes :
        Supercell multipliers of the 8-atom diamond cell (2 → 64 atoms).
    repeats :
        Timed evaluations per size (first call also pays neighbour-list
        construction; we time steady-state re-evaluations with rattled
        positions, like an MD step would).
    """
    from repro.geometry import diamond_cubic, rattle, supercell
    from repro.tb.calculator import TBCalculator

    sym = model.species[0]
    rows = []
    for s in sizes:
        base = diamond_cubic(sym)
        at = supercell(base, s)
        calc = TBCalculator(model)
        calc.compute(at, forces=True)        # warm-up (list build, caches)
        calc.timer.reset()
        for rep in range(repeats):
            moved = rattle(at, temperature_rattle, seed=rep)
            calc.compute(moved, forces=True)
        t = calc.timer
        res = calc.compute(rattle(at, temperature_rattle, seed=99), forces=True)
        m = res["n_orbitals"]
        npairs = res["n_pairs"]
        denom = float(repeats)
        rows.append({
            "natoms": len(at), "m": m, "npairs": npairs,
            "neigh": t.elapsed("neighbors") / denom,
            "build": t.elapsed("hamiltonian") / denom,
            "diag": t.elapsed("diagonalize") / denom,
            "force": t.elapsed("forces") / denom,
            "rep": t.elapsed("repulsive") / denom,
        })

    big = rows[-1]
    host_flops = DIAG_FLOPS_COEFF * big["m"] ** 3 / max(big["diag"], 1e-12)

    def per(quantity, unit_count):
        vals = [r[quantity] / max(r[unit_count], 1) for r in rows]
        return float(np.mean(vals)) * host_flops

    return StepCalibration(
        host_flops=host_flops,
        flops_neigh_per_atom=per("neigh", "natoms"),
        flops_build_per_pair=per("build", "npairs"),
        flops_force_per_pair=per("force", "npairs"),
        flops_rep_per_pair=per("rep", "npairs"),
        pairs_per_atom=float(np.mean([r["npairs"] / r["natoms"] for r in rows])),
        orbitals_per_atom=float(np.mean([r["m"] / r["natoms"] for r in rows])),
    )


class ReplicatedDataModel:
    """Cost model for one replicated-data parallel TBMD step."""

    def __init__(self, calibration: StepCalibration, machine: MachineSpec):
        self.cal = calibration
        self.machine = machine

    def step_time(self, natoms: int, nproc: int,
                  diag: str = "replicated", jacobi_sweeps: int = 8
                  ) -> dict:
        """Model one MD step.

        Returns a dict with ``total`` seconds, a per-phase ``breakdown``,
        ``comm_seconds``, ``bytes`` and the SimComm used.
        """
        if diag not in ("replicated", "distributed"):
            raise ParallelError(f"unknown diag strategy {diag!r}")
        cal = self.cal
        m, npairs = cal.system_dims(natoms)
        p = int(nproc)
        comm = SimComm(self.machine, p)
        breakdown: dict[str, float] = {}

        def phase(name, fn):
            before = comm.elapsed()
            fn()
            breakdown[name] = comm.elapsed() - before

        # per-rank pair counts under the owner-i distribution: take the
        # worst case ceil for the critical path.
        pairs_rank = np.full(p, npairs / p)
        pairs_rank[0] = np.ceil(npairs / p)   # critical-path imbalance
        atoms_rank = np.full(p, natoms / p)
        atoms_rank[0] = np.ceil(natoms / p)

        phase("neighbors",
              lambda: comm.compute_all(cal.flops_neigh_per_atom * atoms_rank))
        phase("build",
              lambda: comm.compute_all(cal.flops_build_per_pair * pairs_rank))
        phase("h_allgather",
              lambda: comm.allgather((m / p) * m * 8.0))
        if diag == "replicated":
            phase("diagonalize",
                  lambda: comm.compute_all(DIAG_FLOPS_COEFF * m**3))
        else:
            jac = distributed_jacobi_model(m, p, self.machine,
                                           sweeps=jacobi_sweeps)
            phase("diagonalize", lambda: _charge(comm, jac))
        phase("density",
              lambda: comm.compute_all(RHO_FLOPS_COEFF * m**3 / p))
        phase("forces",
              lambda: comm.compute_all(
                  (cal.flops_force_per_pair + cal.flops_rep_per_pair)
                  * pairs_rank))
        phase("f_allreduce",
              lambda: comm.allreduce(3.0 * natoms * 8.0))

        return {
            "total": comm.elapsed(),
            "breakdown": breakdown,
            "comm_seconds": comm.comm_seconds,
            "bytes": comm.bytes_moved,
            "comm": comm,
            "natoms": natoms,
            "nproc": p,
            "diag": diag,
        }

    def serial_time(self, natoms: int) -> float:
        """Modelled single-node step time (the speedup denominator)."""
        return self.step_time(natoms, 1)["total"]

    def speedup(self, natoms: int, nproc: int, **kw) -> float:
        return self.serial_time(natoms) / self.step_time(natoms, nproc, **kw)["total"]

    def efficiency(self, natoms: int, nproc: int, **kw) -> float:
        return self.speedup(natoms, nproc, **kw) / nproc


def _charge(comm: SimComm, jac: dict) -> None:
    """Charge a distributed-Jacobi model result onto a SimComm."""
    comm.compute_all(jac["flops_per_rank"])
    for _ in range(jac["n_collectives"]):
        comm.allgather(jac["bytes_per_collective"])

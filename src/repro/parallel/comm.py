"""Communicator abstraction: serial execution and simulated machines.

The decomposition algorithms in this package are written against the small
MPI-flavoured interface below.  Two in-tree implementations:

* :class:`SerialComm` — P = 1, all operations free.  Running a parallel
  algorithm on it must reproduce the serial answer bit-for-bit; the test
  suite relies on this.
* :class:`SimComm` — P virtual ranks with per-rank *virtual clocks*.
  Algorithms execute their numerics once (on real data or as pure cost
  accounting) while the communicator charges per-rank compute time and
  textbook collective costs from a :class:`~repro.parallel.machine
  .MachineSpec`:

  - point-to-point:      α + n/β
  - broadcast/reduce:    ⌈log₂P⌉ · (α + n/β)
  - allreduce:           2⌈log₂P⌉·α + 2n/β   (Rabenseifner)
  - allgather (ring):    (P−1)·α + (P−1)/P · n_total/β

  Collectives synchronise: every clock jumps to the global max before the
  collective cost is added — exactly the behaviour that turns load
  imbalance into lost efficiency in the scaling figures.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ParallelError
from repro.parallel.machine import MachineSpec


class Communicator(ABC):
    """Minimal communicator interface used by the decomposition code."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of ranks."""

    @abstractmethod
    def compute(self, rank: int, flops: float) -> None:
        """Charge *flops* of local work to *rank*."""

    @abstractmethod
    def send(self, src: int, dst: int, nbytes: float) -> None:
        """Point-to-point message."""

    @abstractmethod
    def broadcast(self, nbytes: float) -> None: ...

    @abstractmethod
    def allreduce(self, nbytes: float) -> None: ...

    @abstractmethod
    def allgather(self, nbytes_per_rank: float) -> None: ...

    @abstractmethod
    def barrier(self) -> None: ...

    @abstractmethod
    def elapsed(self) -> float:
        """Wall-clock seconds of the slowest rank so far."""


class SerialComm(Communicator):
    """P = 1; every operation is free.  Wall time can optionally be driven
    by explicit :meth:`compute` charges (useful in unit tests)."""

    def __init__(self):
        self._clock = 0.0

    @property
    def size(self) -> int:
        return 1

    def compute(self, rank: int, flops: float) -> None:
        if rank != 0:
            raise ParallelError("SerialComm has only rank 0")
        # serial compute is charged at unit rate 1 flop/s only if the
        # caller wants time accounting; keep dimensionless neutral:
        self._clock += 0.0

    def send(self, src: int, dst: int, nbytes: float) -> None:
        if src != 0 or dst != 0:
            raise ParallelError("SerialComm has only rank 0")

    def broadcast(self, nbytes: float) -> None:
        pass

    def allreduce(self, nbytes: float) -> None:
        pass

    def allgather(self, nbytes_per_rank: float) -> None:
        pass

    def barrier(self) -> None:
        pass

    def elapsed(self) -> float:
        return self._clock


class SimComm(Communicator):
    """Simulated P-rank machine with virtual per-rank clocks."""

    def __init__(self, machine: MachineSpec, nproc: int):
        if nproc < 1:
            raise ParallelError("nproc must be >= 1")
        if nproc > machine.max_nodes:
            raise ParallelError(
                f"{machine.name} preset models at most {machine.max_nodes} "
                f"nodes, requested {nproc}"
            )
        self.machine = machine
        self._p = int(nproc)
        self.clocks = np.zeros(self._p)
        # accounting for the A1 ablation: separate compute/comm totals
        self.compute_seconds = 0.0
        self.comm_seconds = 0.0
        self.bytes_moved = 0.0
        self.messages = 0

    @property
    def size(self) -> int:
        return self._p

    # -- local work --------------------------------------------------------------
    def compute(self, rank: int, flops: float) -> None:
        if not 0 <= rank < self._p:
            raise ParallelError(f"rank {rank} out of range (P={self._p})")
        dt = self.machine.compute_time(flops)
        self.clocks[rank] += dt
        self.compute_seconds += dt

    def compute_all(self, flops_per_rank) -> None:
        """Charge per-rank flops in one call (array or scalar)."""
        f = np.broadcast_to(np.asarray(flops_per_rank, dtype=float), (self._p,))
        dt = f / self.machine.flops
        self.clocks += dt
        self.compute_seconds += float(dt.sum())

    # -- messaging ------------------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: float) -> None:
        for r in (src, dst):
            if not 0 <= r < self._p:
                raise ParallelError(f"rank {r} out of range (P={self._p})")
        t = self.machine.send_time(nbytes)
        start = max(self.clocks[src], self.clocks[dst])
        self.clocks[src] = start + self.machine.latency
        self.clocks[dst] = start + t
        self.comm_seconds += t
        self.bytes_moved += nbytes
        self.messages += 1

    def _sync_add(self, cost: float, nbytes: float, nmsg: int) -> None:
        start = float(self.clocks.max())
        self.clocks[:] = start + cost
        self.comm_seconds += cost
        self.bytes_moved += nbytes
        self.messages += nmsg

    def broadcast(self, nbytes: float) -> None:
        if self._p == 1:
            return
        steps = math.ceil(math.log2(self._p))
        cost = steps * self.machine.send_time(nbytes)
        self._sync_add(cost, nbytes * (self._p - 1), steps)

    def allreduce(self, nbytes: float) -> None:
        if self._p == 1:
            return
        steps = math.ceil(math.log2(self._p))
        cost = (2 * steps * self.machine.latency
                + 2.0 * nbytes / self.machine.bandwidth)
        self._sync_add(cost, 2.0 * nbytes * (self._p - 1) / self._p * self._p,
                       2 * steps)

    def allgather(self, nbytes_per_rank: float) -> None:
        if self._p == 1:
            return
        total = nbytes_per_rank * self._p
        cost = ((self._p - 1) * self.machine.latency
                + (self._p - 1) / self._p * total / self.machine.bandwidth)
        self._sync_add(cost, total * (self._p - 1), self._p - 1)

    def barrier(self) -> None:
        if self._p == 1:
            return
        steps = math.ceil(math.log2(self._p))
        self._sync_add(steps * self.machine.latency, 0.0, steps)

    def elapsed(self) -> float:
        return float(self.clocks.max())

    def reset(self) -> None:
        self.clocks[:] = 0.0
        self.compute_seconds = 0.0
        self.comm_seconds = 0.0
        self.bytes_moved = 0.0
        self.messages = 0

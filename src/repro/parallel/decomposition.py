"""Data decompositions: block / cyclic partitions and pair distribution.

The replicated-data TBMD step distributes *atoms* (hence Hamiltonian rows
and force accumulation) over ranks; the distributed Jacobi distributes
*matrix columns*.  Both reduce to the partition helpers here, which are
also what the real process-pool backend uses — one implementation, three
consumers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParallelError


def block_partition(n: int, p: int) -> list[np.ndarray]:
    """Contiguous near-equal blocks: first ``n % p`` ranks get one extra.

    Returns a list of index arrays, one per rank (possibly empty).
    """
    if n < 0 or p < 1:
        raise ParallelError(f"invalid partition n={n}, p={p}")
    base = n // p
    extra = n % p
    out = []
    start = 0
    for r in range(p):
        count = base + (1 if r < extra else 0)
        out.append(np.arange(start, start + count))
        start += count
    return out


def cyclic_partition(n: int, p: int) -> list[np.ndarray]:
    """Round-robin assignment: rank r owns indices r, r+p, r+2p, …"""
    if n < 0 or p < 1:
        raise ParallelError(f"invalid partition n={n}, p={p}")
    return [np.arange(r, n, p) for r in range(p)]


def partition_pairs(nl, p: int, scheme: str = "owner-i") -> list[np.ndarray]:
    """Distribute neighbour-list pairs over ranks.

    * ``owner-i`` — pair goes to the rank owning atom *i* under a block
      partition of atoms (the replicated-data convention: each rank builds
      the H rows of its atoms).
    * ``block`` — pairs split into contiguous equal chunks regardless of
      atom ownership (the work-balanced convention of the pool backend).
    """
    if scheme == "block":
        return block_partition(nl.n_pairs, p)
    if scheme == "owner-i":
        atom_parts = block_partition(nl.natoms, p)
        owner = np.empty(nl.natoms, dtype=int)
        for r, idx in enumerate(atom_parts):
            owner[idx] = r
        pair_owner = owner[nl.i]
        return [np.flatnonzero(pair_owner == r) for r in range(p)]
    raise ParallelError(f"unknown pair partition scheme {scheme!r}")


def partition_imbalance(parts: list[np.ndarray]) -> float:
    """Load imbalance factor max/mean of partition sizes (1.0 = perfect)."""
    sizes = np.array([len(x) for x in parts], dtype=float)
    mean = sizes.mean()
    if mean == 0:
        return 1.0
    return float(sizes.max() / mean)


def replicated_h_comm_bytes(n_orbitals: int, p: int) -> float:
    """Bytes each rank contributes to the H-row allgather (float64)."""
    rows_per_rank = n_orbitals / p
    return rows_per_rank * n_orbitals * 8.0


def row_striped_comm_bytes(n_orbitals: int, p: int,
                           halo_fraction: float = 0.25) -> float:
    """Bytes per rank for the row-striped assembly ablation (A1).

    Row-striped assembly keeps H distributed and only exchanges halo
    columns with neighbouring stripes; *halo_fraction* is the fraction of
    a stripe's columns that touch another stripe (sparse TB coupling, so
    far less than the replicated allgather).
    """
    rows_per_rank = n_orbitals / p
    return rows_per_rank * n_orbitals * halo_fraction * 8.0

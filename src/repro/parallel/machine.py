"""Machine specifications for the simulated communicator.

A :class:`MachineSpec` is the classic (flops, α, β) abstraction: sustained
per-node floating-point rate, per-message latency, and point-to-point
bandwidth.  The presets are order-of-magnitude archetypes of the machines
1994 parallel-TBMD papers evaluated on — good enough to reproduce the
*shape* of their scaling curves (which is all this reproduction claims;
see docs/architecture.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

from repro.errors import ParallelError


@dataclass(frozen=True)
class MachineSpec:
    """An abstract distributed-memory machine.

    Attributes
    ----------
    name : identifier used in benchmark tables.
    flops : sustained per-node floating-point rate (flop/s).
    latency : per-message software latency α (seconds).
    bandwidth : per-link bandwidth β (bytes/second).
    max_nodes : largest configuration the preset represents.
    """

    name: str
    flops: float
    latency: float
    bandwidth: float
    max_nodes: int = 1024

    def __post_init__(self):
        if self.flops <= 0 or self.latency < 0 or self.bandwidth <= 0:
            raise ParallelError(f"unphysical machine spec: {self}")

    # -- primitive costs ---------------------------------------------------------
    def compute_time(self, flops: float) -> float:
        """Seconds to execute *flops* floating-point operations."""
        return max(0.0, flops) / self.flops

    def send_time(self, nbytes: float) -> float:
        """Point-to-point message time α + n·β⁻¹."""
        return self.latency + max(0.0, nbytes) / self.bandwidth

    # -- presets ------------------------------------------------------------------
    @classmethod
    def paragon(cls) -> "MachineSpec":
        """Intel Paragon XP/S archetype: i860XP nodes (~10 MFLOPS sustained
        on dense kernels), ~60 µs message latency, ~40 MB/s realisable
        bandwidth."""
        return cls("paragon", flops=1.0e7, latency=60e-6,
                   bandwidth=40e6, max_nodes=1024)

    @classmethod
    def delta(cls) -> "MachineSpec":
        """Intel Touchstone Delta archetype: earlier i860 nodes, slower
        mesh (~25 MB/s), higher latency."""
        return cls("delta", flops=8.0e6, latency=80e-6,
                   bandwidth=25e6, max_nodes=512)

    @classmethod
    def cm5(cls) -> "MachineSpec":
        """Thinking Machines CM-5 archetype (SPARC nodes + fat tree,
        without vector units on the dense kernels)."""
        return cls("cm5", flops=5.0e6, latency=85e-6,
                   bandwidth=10e6, max_nodes=1024)

    @classmethod
    def modern(cls) -> "MachineSpec":
        """A contemporary cluster node for contrast: ~10 GFLOPS sustained,
        ~1.5 µs latency, ~10 GB/s links."""
        return cls("modern", flops=1.0e10, latency=1.5e-6,
                   bandwidth=1.0e10, max_nodes=4096)


# read-only by construction (MappingProxyType): machine.py is imported
# from parallel workers, so the preset table must not be mutable shared
# state (see the shared-state lint rule)
PRESETS = MappingProxyType({
    "paragon": MachineSpec.paragon,
    "delta": MachineSpec.delta,
    "cm5": MachineSpec.cm5,
    "modern": MachineSpec.modern,
})


def get_machine(name: str) -> MachineSpec:
    """Look up a preset machine by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ParallelError(f"unknown machine {name!r}; known: {known}") from None

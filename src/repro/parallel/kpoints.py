"""k-point parallelism: the third classic TBMD decomposition.

For k-sampled total energies the work is embarrassingly parallel over k
points — each rank diagonalises its share of H(k) independently, then one
allreduce combines the weighted band sums and a scalar bisection fixes
the common Fermi level.  Near-perfect speedup up to P = n_k, then a hard
ceiling: the decomposition every band-structure code shipped first, and
the reason Γ-point MD (which has no k to distribute) needed the
replicated/distributed machinery instead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParallelError
from repro.parallel.comm import SimComm
from repro.parallel.machine import MachineSpec
from repro.parallel.replicated import DIAG_FLOPS_COEFF


def mu_bisection_rounds(mu_tol: float, bracket_width: float = 20.0) -> int:
    """Scalar allreduce rounds the distributed μ bisection actually pays.

    Bisection halves the bracket once per round, so reaching *mu_tol*
    from *bracket_width* (eV — spectral width plus smearing padding, the
    bracket every solver here opens with) costs
    ``ceil(log2(width / tol))`` rounds.  The cost model used to hardcode
    40; deriving it keeps the model honest when callers ask for looser
    or tighter chemical potentials.
    """
    if mu_tol <= 0.0 or bracket_width <= 0.0:
        raise ParallelError("mu_tol and bracket_width must be > 0")
    if mu_tol >= bracket_width:
        return 1
    return int(np.ceil(np.log2(bracket_width / mu_tol)))


def kpoint_parallel_time(n_orbitals: int, n_kpoints: int, nproc: int,
                         machine: MachineSpec, build_flops: float = 0.0,
                         mu_tol: float = 1e-10,
                         mu_bracket_width: float = 20.0) -> dict:
    """Model one k-sampled energy evaluation on P ranks.

    Each rank handles ``ceil(n_k/P)`` k points (complex diagonalisation
    ≈ 4× the real flop count), then an allreduce of the weighted
    eigenvalue sums (O(M) doubles) and the scalar μ-bisection rounds —
    :func:`mu_bisection_rounds` of O(1) allreduces, derived from the
    requested *mu_tol* so the model tracks the real solver's round count.
    """
    if n_kpoints < 1 or nproc < 1:
        raise ParallelError("n_kpoints and nproc must be >= 1")
    comm = SimComm(machine, nproc)
    per_rank = int(np.ceil(n_kpoints / nproc))
    flops = per_rank * (4.0 * DIAG_FLOPS_COEFF * n_orbitals**3 + build_flops)
    comm.compute_all(flops)
    comm.allreduce(8.0 * n_orbitals)          # eigenvalue-sum vector
    rounds = mu_bisection_rounds(mu_tol, mu_bracket_width)
    for _ in range(rounds):                    # μ bisection, scalar
        comm.allreduce(8.0)
    return {
        "total": comm.elapsed(),
        "kpoints_per_rank": per_rank,
        "comm_seconds": comm.comm_seconds,
        "mu_rounds": rounds,
    }


def kpoint_speedup(n_orbitals: int, n_kpoints: int, procs,
                   machine: MachineSpec) -> list[dict]:
    """Speedup table; saturates exactly at ``ceil`` granularity."""
    t1 = kpoint_parallel_time(n_orbitals, n_kpoints, 1, machine)["total"]
    rows = []
    for p in procs:
        r = kpoint_parallel_time(n_orbitals, n_kpoints, int(p), machine)
        rows.append({
            "nproc": int(p),
            "time": r["total"],
            "speedup": t1 / r["total"],
            "efficiency": t1 / r["total"] / p,
            "kpoints_per_rank": r["kpoints_per_rank"],
        })
    return rows

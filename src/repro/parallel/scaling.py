"""Strong/weak scaling harnesses and Amdahl analytics.

These produce the rows of the F1/F2 figures: speedup and efficiency vs
processor count from the calibrated replicated-data model, plus the
closed-form Amdahl reference curves the measured-vs-model comparison is
drawn against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParallelError
from repro.parallel.replicated import ReplicatedDataModel


def amdahl_speedup(serial_fraction: float, nproc) -> np.ndarray:
    """Classic Amdahl curve ``S(P) = 1 / (s + (1−s)/P)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ParallelError("serial fraction must be in [0, 1]")
    p = np.asarray(nproc, dtype=float)
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p)


def strong_scaling(model: ReplicatedDataModel, natoms: int, procs,
                   diag: str = "replicated") -> list[dict]:
    """Fixed problem size, growing P.

    Returns one row per P: ``{"nproc", "time", "speedup", "efficiency",
    "comm_fraction", "breakdown"}``.
    """
    t1 = model.step_time(natoms, 1, diag="replicated")["total"]
    rows = []
    for p in procs:
        r = model.step_time(natoms, int(p), diag=diag)
        rows.append({
            "nproc": int(p),
            "natoms": natoms,
            "time": r["total"],
            "speedup": t1 / r["total"],
            "efficiency": t1 / r["total"] / p,
            "comm_fraction": r["comm_seconds"] / max(r["total"], 1e-300),
            "breakdown": r["breakdown"],
        })
    return rows


def weak_scaling(model: ReplicatedDataModel, atoms_per_proc: int, procs,
                 diag: str = "replicated") -> list[dict]:
    """Fixed work per rank: N = atoms_per_proc · P.

    Weak-scaling efficiency is ``t(1 rank, n₀ atoms) / t(P ranks, P·n₀)``;
    for O(N³) diagonalisation even the *ideal* replicated algorithm
    degrades as P² — the figure that motivated distributed eigensolvers.
    """
    t1 = model.step_time(atoms_per_proc, 1, diag="replicated")["total"]
    rows = []
    for p in procs:
        n = atoms_per_proc * int(p)
        r = model.step_time(n, int(p), diag=diag)
        rows.append({
            "nproc": int(p),
            "natoms": n,
            "time": r["total"],
            "efficiency": t1 / r["total"],
            "comm_fraction": r["comm_seconds"] / max(r["total"], 1e-300),
        })
    return rows


def serial_fraction_estimate(model: ReplicatedDataModel, natoms: int) -> float:
    """Fraction of the P=1 step spent in the non-parallelisable replicated
    diagonalisation — the Amdahl parameter of the F1 reference curve."""
    r = model.step_time(natoms, 1, diag="replicated")
    return r["breakdown"]["diagonalize"] / max(r["total"], 1e-300)

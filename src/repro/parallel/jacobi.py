"""Distributed block-Jacobi diagonalisation: schedule + cost model.

The classic parallel eigensolver of the era: the matrix is split into 2P
block columns; each sweep runs 2P−1 round-robin *stages* in which the P
ranks hold disjoint block pairs, rotate them independently, then exchange
blocks with their tournament partner.  The rotation schedule
(:func:`round_robin_pairs`) is executed *for real* by
:func:`round_robin_jacobi` — a serial implementation organised exactly
like the parallel algorithm, validated against LAPACK in the tests — and
*costed* by :func:`distributed_jacobi_model` for the F3 crossover figure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ParallelError
from repro.parallel.machine import MachineSpec
from repro.tb.eigensolvers.jacobi import jacobi_rotation, offdiag_norm


def round_robin_pairs(n_blocks: int) -> list[list[tuple[int, int]]]:
    """Round-robin tournament schedule for *n_blocks* players.

    Returns ``n_blocks − 1`` stages (n_blocks even; odd gets a bye), each
    a list of disjoint pairs covering every pairing exactly once across
    the schedule — the parallel rotation sets of block-Jacobi.
    """
    if n_blocks < 2:
        raise ParallelError("need at least 2 blocks")
    players = list(range(n_blocks))
    bye = None
    if n_blocks % 2 == 1:
        players.append(-1)   # bye marker
        bye = -1
    m = len(players)
    stages = []
    arr = players[:]
    for _ in range(m - 1):
        stage = []
        for k in range(m // 2):
            a, b = arr[k], arr[m - 1 - k]
            if bye not in (a, b):
                stage.append((min(a, b), max(a, b)))
        stages.append(stage)
        # rotate all but the first
        arr = [arr[0]] + [arr[-1]] + arr[1:-1]
    return stages


def round_robin_jacobi(H: np.ndarray, n_blocks: int = 4, tol: float = 1e-10,
                       max_sweeps: int = 60
                       ) -> tuple[np.ndarray, np.ndarray, int]:
    """Jacobi diagonalisation following the parallel round-robin schedule.

    Within a stage, the (p, q) element rotations of different block pairs
    are independent — on a real machine each rank executes its pair
    concurrently; here they run sequentially but in the *same order*, so
    the sweep count (which the cost model consumes) is faithful.

    Returns ``(eigenvalues ascending, eigenvectors, sweeps_used)``.
    """
    a = np.array(H, dtype=float, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ParallelError(f"matrix must be square, got {a.shape}")
    if n_blocks > n:
        n_blocks = max(1, n)
    v = np.eye(n)
    norm = float(np.linalg.norm(a)) or 1.0
    # block index ranges
    bounds = np.linspace(0, n, n_blocks + 1).astype(int)
    blocks = [np.arange(bounds[k], bounds[k + 1]) for k in range(n_blocks)]
    stages = round_robin_pairs(n_blocks) if n_blocks >= 2 else []

    def rotate_set(rows, cols):
        for p in rows:
            for q in cols:
                if p == q:
                    continue
                pp, qq = (p, q) if p < q else (q, p)
                apq = a[pp, qq]
                if abs(apq) <= tol * norm * 1e-2:
                    continue
                c, s = jacobi_rotation(a[pp, pp], a[qq, qq], apq)
                _apply(a, v, pp, qq, c, s)

    sweeps = 0
    for sweeps in range(1, max_sweeps + 1):
        if offdiag_norm(a) <= tol * norm:
            sweeps -= 1
            break
        # diagonal blocks first (local, no communication on a real machine)
        for blk in blocks:
            rotate_set(blk, blk)
        # off-diagonal block pairs by tournament stage
        for stage in stages:
            for (bi, bj) in stage:
                rotate_set(blocks[bi], blocks[bj])
    else:
        raise ConvergenceError(
            f"round-robin Jacobi: tol {tol} not reached in {max_sweeps} sweeps",
            iterations=max_sweeps,
            residual=offdiag_norm(a) / norm,
        )

    eps = np.diag(a).copy()
    order = np.argsort(eps)
    return eps[order], v[:, order], sweeps


def _apply(a, v, p, q, c, s):
    ap = a[:, p].copy(); aq = a[:, q].copy()
    a[:, p] = c * ap - s * aq
    a[:, q] = s * ap + c * aq
    rp = a[p, :].copy(); rq = a[q, :].copy()
    a[p, :] = c * rp - s * rq
    a[q, :] = s * rp + c * rq
    vp = v[:, p].copy(); vq = v[:, q].copy()
    v[:, p] = c * vp - s * vq
    v[:, q] = s * vp + c * vq


def distributed_jacobi_model(n: int, p: int, machine: MachineSpec,
                             sweeps: int = 8) -> dict:
    """Cost of distributed block-Jacobi on a (flops, α, β) machine.

    Per sweep: each rank rotates its share of the matrix —
    ``≈ 12 n³ / p`` flops (a Jacobi sweep costs ~12 n³ against ~10 n³ for
    the *whole* Householder solve, which is why the crossover needs large
    P) — plus ``2p − 1`` block exchanges of ``n²/(2p)`` doubles each,
    modelled as allgather-equivalent collectives.

    Returns the dict the replicated-data model charges onto its SimComm.
    """
    if n < 1 or p < 1:
        raise ParallelError("n and p must be >= 1")
    flops_per_rank = sweeps * 12.0 * n**3 / p
    n_collectives = sweeps * max(1, 2 * p - 1)
    bytes_per_collective = (n * n / (2.0 * p)) * 8.0
    # standalone elapsed estimate (used directly by the F3 bench)
    t_compute = flops_per_rank / machine.flops
    t_comm = n_collectives * (
        (p - 1) * machine.latency
        + (p - 1) / p * (bytes_per_collective * p) / machine.bandwidth
    ) if p > 1 else 0.0
    return {
        "flops_per_rank": flops_per_rank,
        "n_collectives": n_collectives,
        "bytes_per_collective": bytes_per_collective,
        "time": t_compute + t_comm,
        "compute_time": t_compute,
        "comm_time": t_comm,
        "sweeps": sweeps,
    }

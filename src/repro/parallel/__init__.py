"""Parallel TBMD: communicators, machine models, decompositions, scaling.

This package reproduces the *parallelisation* content of the paper.  The
container this reproduction runs in exposes a single CPU, so multi-node
speedups cannot be *measured*; instead (see docs/architecture.md, substitution table):

* the decomposition algorithms (replicated-data MD step, row-striped
  Hamiltonian assembly, distributed block-Jacobi diagonalisation) are
  implemented against an abstract :class:`~repro.parallel.comm.Communicator`
  and *executed for real* through :class:`~repro.parallel.comm.SerialComm`
  and the process-pool backend, validating correctness;
* the same algorithms run against :class:`~repro.parallel.comm.SimComm`,
  which charges analytic latency/bandwidth/flop costs from a
  :class:`~repro.parallel.machine.MachineSpec` (Paragon/Delta/CM-5-class
  presets), reproducing the paper-era speedup and efficiency curves with
  compute times calibrated from measured single-process timings.
"""

from repro.parallel.comm import Communicator, SerialComm, SimComm
from repro.parallel.machine import MachineSpec
from repro.parallel.decomposition import (
    block_partition,
    cyclic_partition,
    partition_pairs,
)
from repro.parallel.replicated import (
    ReplicatedDataModel,
    StepCalibration,
    calibrate_step,
)
from repro.parallel.jacobi import distributed_jacobi_model, round_robin_pairs
from repro.parallel.scaling import strong_scaling, weak_scaling, amdahl_speedup
from repro.parallel.pool import map_tasks, parallel_build_hamiltonian, parallel_repulsive
from repro.parallel.kpoints import kpoint_parallel_time, kpoint_speedup

__all__ = [
    "Communicator",
    "SerialComm",
    "SimComm",
    "MachineSpec",
    "block_partition",
    "cyclic_partition",
    "partition_pairs",
    "ReplicatedDataModel",
    "StepCalibration",
    "calibrate_step",
    "distributed_jacobi_model",
    "round_robin_pairs",
    "strong_scaling",
    "weak_scaling",
    "amdahl_speedup",
    "map_tasks",
    "parallel_build_hamiltonian",
    "parallel_repulsive",
    "kpoint_parallel_time",
    "kpoint_speedup",
]

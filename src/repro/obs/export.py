"""Trace and metrics exporters: JSONL and Chrome trace events.

Two on-disk formats, chosen by extension at the CLI:

``*.jsonl``
    One JSON object per line: a ``{"type": "meta"}`` header, one
    ``{"type": "span"}`` record per finished span, and a final
    ``{"type": "metrics"}`` record holding the registry snapshot.  This
    is the format ``tools/trace_report.py`` reads.

``*.json``
    The Chrome trace-event format — ``{"traceEvents": [...]}`` with
    complete (``"ph": "X"``) events in microseconds — which Perfetto
    (https://ui.perfetto.dev) and ``chrome://tracing`` open directly.
"""

from __future__ import annotations

import json
import time
from os import PathLike

StrPath = str | PathLike[str]

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import Tracer, get_tracer

FORMAT_VERSION = 1


def _meta(tracer: Tracer) -> dict:
    return {"type": "meta", "version": FORMAT_VERSION,
            "written_at": time.time(), "dropped_spans": tracer.dropped}


def write_jsonl(path: StrPath, tracer: Tracer | None = None,
                registry: MetricsRegistry | None = None) -> int:
    """Write the JSONL trace; returns the number of span records."""
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    spans = tracer.finished()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(_meta(tracer)) + "\n")
        for rec in spans:
            fh.write(json.dumps(dict(rec, type="span")) + "\n")
        fh.write(json.dumps({"type": "metrics",
                             "data": registry.snapshot()}) + "\n")
    return len(spans)


def read_jsonl(path: StrPath) -> tuple[dict, list[dict], dict]:
    """Parse a JSONL trace → ``(meta, span_records, metrics_snapshot)``."""
    meta: dict = {}
    spans: list[dict] = []
    metrics: dict = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("type")
            if kind == "meta":
                meta = rec
            elif kind == "span":
                spans.append(rec)
            elif kind == "metrics":
                metrics = rec.get("data") or {}
    return meta, spans, metrics


def chrome_trace_events(spans: list[dict]) -> list[dict]:
    """Span records → Chrome trace-event dicts (complete events, µs)."""
    events = []
    for rec in spans:
        ev = {"name": rec.get("name", "?"), "ph": "X", "cat": "repro",
              "ts": float(rec.get("ts", 0.0)) * 1e6,
              "dur": float(rec.get("dur", 0.0)) * 1e6,
              "pid": int(rec.get("pid", 0)), "tid": int(rec.get("tid", 0))}
        args = dict(rec.get("attrs") or {})
        if rec.get("status") == "error":
            args["status"] = "error"
        if args:
            ev["args"] = args
        events.append(ev)
    return events


def write_chrome_trace(path: StrPath, tracer: Tracer | None = None,
                       registry: MetricsRegistry | None = None) -> int:
    """Write a Perfetto-viewable Chrome trace; returns the event count."""
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    events = chrome_trace_events(tracer.finished())
    doc = {"traceEvents": events, "displayTimeUnit": "ms",
           "otherData": {"format_version": FORMAT_VERSION,
                         "dropped_spans": tracer.dropped,
                         "metrics": registry.snapshot(samples=False)}}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(events)


def write_trace(path: StrPath, tracer: Tracer | None = None,
                registry: MetricsRegistry | None = None) -> int:
    """Dispatch on extension: ``.json`` → Chrome trace, else JSONL."""
    if str(path).endswith(".json"):
        return write_chrome_trace(path, tracer, registry)
    return write_jsonl(path, tracer, registry)


def write_metrics_json(path: StrPath, registry: MetricsRegistry | None = None) -> dict:
    """Dump the registry snapshot as one JSON document; returns it."""
    registry = registry if registry is not None else get_registry()
    snap = registry.snapshot()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snap

"""Counters, gauges and bounded-reservoir histograms.

A :class:`MetricsRegistry` owns named instruments.  Counters and gauges
are a float behind a lock; :class:`Histogram` keeps running ``count`` /
``sum`` / ``min`` / ``max`` plus a **bounded ring buffer** of recent
samples (a ``deque(maxlen=...)``) from which percentiles are computed —
never an unbounded per-event list, so a long-lived server's latency
tracking has a hard memory ceiling.

Registries snapshot to plain dicts and **merge**: counters add,
histogram statistics combine and sample reservoirs concatenate (the ring
keeps the most recent ``maxlen``).  That merge is how worker-process
metrics recorded under :func:`repro.parallel.pool.map_tasks` fold into
the parent registry (see :mod:`repro.obs.remote`).

The module-level helpers (:func:`counter_inc`, :func:`observe`,
:func:`gauge_set`) are the instrumented call sites' interface: a single
boolean check when metrics are disabled, so the fast path pays nothing.
"""

from __future__ import annotations

import threading
from collections import deque


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """Last-written value (queue depth, resident structures, ...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self.value = float(v)


class Histogram:
    """Running stats + a bounded reservoir of recent samples.

    ``count`` / ``sum`` / ``min`` / ``max`` cover *every* observation;
    percentiles come from the last ``maxlen`` samples (a ring buffer).
    For the stationary distributions we care about (request latency,
    per-region solve time) a recent-window percentile is the right
    estimator anyway — and it is O(maxlen) memory forever.
    """

    __slots__ = ("name", "maxlen", "count", "sum", "min", "max",
                 "_samples", "_lock")

    def __init__(self, name: str, maxlen: int = 512) -> None:
        self.name = name
        self.maxlen = int(maxlen)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: deque = deque(maxlen=self.maxlen)
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        v = float(v)
        with self._lock:
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            self._samples.append(v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0–100) of the sample window, by linear
        interpolation; 0.0 when no samples were observed."""
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        pos = (len(data) - 1) * (float(q) / 100.0)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> dict:
        """Count/sum/mean/min/max plus p50/p90/p99 of the window."""
        with self._lock:
            data = sorted(self._samples)
            count, total = self.count, self.sum
            vmin = self.min if self.count else 0.0
            vmax = self.max if self.count else 0.0

        def pct(q: float) -> float:
            if not data:
                return 0.0
            pos = (len(data) - 1) * (q / 100.0)
            lo = int(pos)
            hi = min(lo + 1, len(data) - 1)
            frac = pos - lo
            return data[lo] * (1.0 - frac) + data[hi] * frac

        return {"count": count, "sum": total,
                "mean": total / count if count else 0.0,
                "min": vmin, "max": vmax,
                "p50": pct(50.0), "p90": pct(90.0), "p99": pct(99.0)}

    def merge(self, snap: dict) -> None:
        """Fold a snapshot record (``samples`` + running stats) in."""
        with self._lock:
            self.count += int(snap.get("count", 0))
            self.sum += float(snap.get("sum", 0.0))
            if snap.get("count"):
                self.min = min(self.min, float(snap.get("min", self.min)))
                self.max = max(self.max, float(snap.get("max", self.max)))
            for v in snap.get("samples", ()):
                self._samples.append(float(v))


class MetricsRegistry:
    """Thread-safe name → instrument map with snapshot/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, maxlen: int = 512) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(
                    name, Histogram(name, maxlen=maxlen))

    # -- snapshot / merge ---------------------------------------------------
    def snapshot(self, samples: bool = True) -> dict:
        """Plain-dict snapshot: JSON-ready, picklable, mergeable.

        ``samples=False`` omits the raw histogram reservoirs (summaries
        only) — the compact form the service ``metrics`` op returns.
        """
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            hists = list(self._histograms.items())
        out_h = {}
        for name, h in hists:
            rec = h.summary()
            rec["maxlen"] = h.maxlen
            if samples:
                with h._lock:
                    rec["samples"] = list(h._samples)
            out_h[name] = rec
        return {"counters": counters, "gauges": gauges, "histograms": out_h}

    def merge(self, snap: dict) -> None:
        """Fold a snapshot (from a worker process) into this registry."""
        for name, v in (snap.get("counters") or {}).items():
            self.counter(name).inc(v)
        for name, v in (snap.get("gauges") or {}).items():
            self.gauge(name).set(v)
        for name, rec in (snap.get("histograms") or {}).items():
            self.histogram(name, maxlen=int(rec.get("maxlen", 512))).merge(rec)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: process-global registry; inert until ``enable_metrics()``
_REGISTRY = MetricsRegistry()
_ENABLED = False


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def metrics_enabled() -> bool:
    return _ENABLED


def enable_metrics() -> MetricsRegistry:
    """Turn metric collection on for this process (idempotent)."""
    global _ENABLED
    _ENABLED = True
    return _REGISTRY


def disable_metrics() -> None:
    global _ENABLED
    _ENABLED = False


def counter_inc(name: str, n: float = 1.0) -> None:
    """Increment counter *name* iff metrics are enabled (else free)."""
    if _ENABLED:
        _REGISTRY.counter(name).inc(n)


def gauge_set(name: str, v: float) -> None:
    """Set gauge *name* iff metrics are enabled (else free)."""
    if _ENABLED:
        _REGISTRY.gauge(name).set(v)


def observe(name: str, v: float) -> None:
    """Observe *v* into histogram *name* iff metrics are enabled."""
    if _ENABLED:
        _REGISTRY.histogram(name).observe(v)


def _swap_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the global one; returns the old registry."""
    global _REGISTRY
    old, _REGISTRY = _REGISTRY, registry
    return old

"""Cross-process telemetry: the ``map_tasks`` serialization contract.

Spans and metrics recorded inside a ``ProcessPoolExecutor`` worker live
in *that* process's globals and would be lost when the task returns.
This module defines the round trip:

- :class:`TelemetryWorker` wraps the task callable (picklable as long as
  the callable is).  In the worker it swaps in a **fresh, enabled**
  tracer/registry for the duration of the task — a fork-started worker
  inherits the parent's buffers, and without the swap it would re-ship
  every parent span with every task — then returns the real result
  boxed in a :class:`TelemetryEnvelope` together with the captured span
  records and metrics snapshot (plain dicts, cheap to pickle).

- :func:`absorb_results` runs in the parent: it unboxes each envelope,
  merges the metrics into the parent registry, and adopts the spans into
  the parent tracer re-parented under the span that dispatched the pool
  call — so per-(k, region) kernel timings nest inside ``foe`` in the
  final trace.

``repro.parallel.pool.map_tasks`` applies the wrapper only on its
process-pool paths and only while telemetry is enabled; inline and
thread-pool execution records straight into the parent's globals.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from repro.obs import metrics as _metrics
from repro.obs import spans as _spans


def telemetry_active() -> bool:
    """True when either tracing or metrics collection is enabled."""
    return _spans.tracing_enabled() or _metrics.metrics_enabled()


class TelemetryEnvelope:
    """Box pairing a task result with the telemetry captured around it."""

    __slots__ = ("result", "spans", "metrics")

    def __init__(self, result: Any, spans: list[dict],
                 metrics: dict | None) -> None:
        self.result = result
        self.spans = spans
        self.metrics = metrics


class TelemetryWorker:
    """Picklable wrapper enabling capture around one task call."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self.fn = fn

    def __call__(self, task: Any) -> TelemetryEnvelope:
        tracer = _spans.Tracer(enabled=True)
        registry = _metrics.MetricsRegistry()
        old_tracer = _spans._swap_tracer(tracer)
        old_registry = _metrics._swap_registry(registry)
        was_enabled = _metrics._ENABLED
        _metrics._ENABLED = True
        try:
            result = self.fn(task)
        finally:
            _metrics._ENABLED = was_enabled
            _spans._swap_tracer(old_tracer)
            _metrics._swap_registry(old_registry)
        return TelemetryEnvelope(result, tracer.drain(), registry.snapshot())


def absorb_results(results: Iterable[Any]) -> list:
    """Unbox envelopes, merging their telemetry into this process.

    Plain (non-envelope) results pass through untouched, so the caller
    can apply this unconditionally to a mixed or already-plain list.
    """
    tracer = _spans.get_tracer()
    registry = _metrics.get_registry()
    parent = tracer.current() if tracer.enabled else None
    parent_id = parent.span_id if parent is not None else None
    out = []
    for item in results:
        if isinstance(item, TelemetryEnvelope):
            if tracer.enabled and item.spans:
                tracer.adopt(item.spans, parent_id=parent_id)
            if _metrics.metrics_enabled() and item.metrics:
                registry.merge(item.metrics)
            out.append(item.result)
        else:
            out.append(item)
    return out

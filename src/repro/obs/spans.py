"""Hierarchical spans with attributes and a thread-safe context stack.

A :class:`Span` measures one timed operation; entering it pushes it onto
a thread-local stack so spans opened inside nest under it, exactly like
an OpenTelemetry context.  Finished spans accumulate on the process-wide
:class:`Tracer` as plain dicts (picklable, JSON-ready) with a bounded
buffer — a runaway loop drops spans and counts them rather than eating
memory.

The module-level :func:`span` is the only call sites use::

    with obs.span("foe") as sp:
        sp.set(mode="fused")

When tracing is disabled (the default) it returns :data:`NULL_SPAN`, a
module-level singleton whose every method is a no-op — the disabled fast
path is one attribute load and one ``is True`` check, with **zero**
allocations (asserted by a tier-1 test).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from types import TracebackType
from typing import Any

#: converts ``time.perf_counter()`` readings to wall-clock seconds so span
#: timestamps from different processes on the same host are comparable.
_EPOCH_OFFSET = time.time() - time.perf_counter()


class Span:
    """One timed operation; context manager; records on exit.

    Attributes are set with :meth:`set` (keyword form) and land in the
    exported record's ``attrs`` dict.  An exception raised inside the
    ``with`` block marks ``status: "error"`` with the exception type and
    message, then propagates.
    """

    __slots__ = ("name", "span_id", "parent_id", "pid", "tid", "start",
                 "duration", "attrs", "status", "_tracer", "_t0")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self._tracer = tracer
        self.span_id = tracer.next_id()
        self.parent_id: str | None = None
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.start = 0.0
        self.duration = 0.0
        self.attrs: dict | None = None
        self.status = "ok"
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (last write per key wins)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._t0 = time.perf_counter()
        self.start = _EPOCH_OFFSET + self._t0
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.status = "error"
            self.set(exception=exc_type.__name__, message=str(exc))
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - unbalanced exit, keep the stack sane
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer.record(self)

    def to_record(self) -> dict:
        """Plain-dict form (what the exporters and the pool contract ship)."""
        rec = {"name": self.name, "id": self.span_id,
               "parent": self.parent_id, "pid": self.pid, "tid": self.tid,
               "ts": self.start, "dur": self.duration, "status": self.status}
        if self.attrs:
            rec["attrs"] = dict(self.attrs)
        return rec


class _NullSpan:
    """Singleton no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        """Never suppresses the exception (implicitly returns None)."""


#: the one instance every disabled ``span()`` call returns
NULL_SPAN = _NullSpan()


class Tracer:
    """Process-wide collector of finished spans.

    ``max_spans`` bounds memory: once full, further spans are dropped and
    counted in :attr:`dropped`.  The context stack is thread-local, so
    concurrent service workers each get correct nesting; the finished
    buffer is guarded by a lock.
    """

    def __init__(self, enabled: bool = False,
                 max_spans: int = 200_000) -> None:
        self.enabled = bool(enabled)
        self.max_spans = int(max_spans)
        self.dropped = 0
        self._finished: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._pid = os.getpid()

    # -- context stack ------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """Innermost live span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle -----------------------------------------------------
    def next_id(self) -> str:
        return f"{self._pid:x}.{next(self._ids):x}"

    def span(self, name: str) -> Span:
        return Span(name, self)

    def record(self, sp: Span) -> None:
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.dropped += 1
            else:
                self._finished.append(sp.to_record())

    # -- harvesting ---------------------------------------------------------
    def finished(self) -> list[dict]:
        """Snapshot (copy) of the finished-span records."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> list[dict]:
        """Return finished spans and clear the buffer (for worker capture)."""
        with self._lock:
            out = self._finished
            self._finished = []
            return out

    def adopt(self, records: list[dict], parent_id: str | None = None) -> None:
        """Merge foreign span records (e.g. from a pool worker).

        Records whose parent is not among the adopted batch (the worker's
        roots) are re-parented under *parent_id* so the worker's activity
        nests inside the span that dispatched it.
        """
        if not records:
            return
        ids = {rec.get("id") for rec in records}
        with self._lock:
            for rec in records:
                if rec.get("parent") not in ids:
                    rec = dict(rec, parent=parent_id)
                if len(self._finished) >= self.max_spans:
                    self.dropped += 1
                else:
                    self._finished.append(rec)

    def reset(self) -> None:
        with self._lock:
            self._finished = []
            self.dropped = 0


#: process-global tracer; disabled until ``enable_tracing()``
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def enable_tracing(max_spans: int | None = None) -> Tracer:
    """Turn span collection on for this process (idempotent)."""
    _TRACER.enabled = True
    if max_spans is not None:
        _TRACER.max_spans = int(max_spans)
    return _TRACER


def disable_tracing() -> None:
    _TRACER.enabled = False


def span(name: str) -> "Span | _NullSpan":
    """A live span when tracing is on, :data:`NULL_SPAN` otherwise.

    The disabled path must stay allocation-free: no kwargs, no closure,
    just a flag test and the shared singleton.
    """
    if _TRACER.enabled:
        return Span(name, _TRACER)
    return NULL_SPAN


def current_span() -> "Span | _NullSpan":
    """The innermost live span on this thread (:data:`NULL_SPAN` if none).

    Lets deep call sites annotate the operation that is already being
    timed (``obs.current_span().set(mode="fused")``) without opening a
    new span.
    """
    if _TRACER.enabled:
        cur = _TRACER.current()
        if cur is not None:
            return cur
    return NULL_SPAN


def _swap_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the process-global one; returns the old tracer.

    Used by the worker-capture contract (fresh tracer per task batch) and
    by tests that need isolation.
    """
    global _TRACER
    old, _TRACER = _TRACER, tracer
    return old

"""Unified observability plane: spans, metrics, exporters.

The SC'94 paper's whole argument is a per-phase wall-clock breakdown of
an MD step; this package is the instrument that produces it from live
runs.  It is deliberately **stdlib-only** (no numpy in the hot path, no
third-party tracing client) and OpenTelemetry-*shaped* rather than
OpenTelemetry-*dependent*: hierarchical spans with attributes and a
thread-safe context stack, a registry of counters / gauges / bounded
histograms, and JSONL / Chrome-trace-event exporters that Perfetto and
``tools/trace_report.py`` can read.

Everything is off by default and the disabled path allocates nothing:
``span()`` returns a module-level singleton no-op and the metric helpers
are a single boolean check.  Enable per process with
:func:`enable_tracing` / :func:`enable_metrics` (the CLI ``--trace`` /
``--metrics`` flags do exactly this).

Telemetry recorded inside :func:`repro.parallel.pool.map_tasks` process
workers travels back with the task results (see :mod:`repro.obs.remote`)
and merges into the parent trace/registry, so per-(k, region) kernel
timings survive the process boundary.
"""

from repro.obs.export import (
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_inc,
    disable_metrics,
    enable_metrics,
    gauge_set,
    get_registry,
    metrics_enabled,
    observe,
)
from repro.obs.remote import (
    TelemetryEnvelope,
    TelemetryWorker,
    absorb_results,
    telemetry_active,
)
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetryEnvelope",
    "TelemetryWorker",
    "Tracer",
    "absorb_results",
    "chrome_trace_events",
    "counter_inc",
    "current_span",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "gauge_set",
    "get_registry",
    "get_tracer",
    "metrics_enabled",
    "observe",
    "read_jsonl",
    "span",
    "tracing_enabled",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
]

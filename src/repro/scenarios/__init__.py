"""Scenario campaign framework: registered physics workloads, matrix
expansion, batched execution and queryable artifacts.

Importing this package registers the built-in scenarios (``eos``,
``vacancy``, ``elastic``, ``phonons``, ``melt-quench`` — plus
``ase-relax`` when the optional ``ase`` extra is installed).  See
docs/campaigns.md for the matrix format and ``repro.cli campaign`` for
the command-line runner.
"""

from repro.scenarios import store  # noqa: F401  (re-exported submodule)
from repro.scenarios.base import (
    ParamSpec, Scenario, ScenarioResult, StructureHandle,
    available_scenarios, get_scenario, register_scenario, scenarios_by_tag,
)
from repro.scenarios.campaign import (
    QUICK_MATRIX, CampaignCell, CampaignRun, CampaignSpec, build_structure,
    expand_matrix, load_campaign_spec, run_campaign,
)
from repro.scenarios.store import (
    query_cells, read_artifact, write_jsonl, write_sqlite,
)

# built-in scenario registrations (import side effect)
from repro.scenarios import (  # noqa: E402,F401  isort: skip
    defects, elastic, eos, melt_quench, phonons, ase_relax,
)

__all__ = [
    "ParamSpec",
    "Scenario",
    "ScenarioResult",
    "StructureHandle",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "scenarios_by_tag",
    "CampaignCell",
    "CampaignRun",
    "CampaignSpec",
    "QUICK_MATRIX",
    "build_structure",
    "expand_matrix",
    "load_campaign_spec",
    "run_campaign",
    "store",
    "query_cells",
    "read_artifact",
    "write_jsonl",
    "write_sqlite",
]

"""ASE-driven relaxation scenario (optional — needs the ``ase`` extra).

Demonstrates the other half of the bridge: an ASE optimizer (BFGS/FIRE)
relaxing a structure through :class:`repro.ase_bridge.PytbmdCalculator`.
Runs entirely in-process — the bridge's persistent-state mirror gives
the optimizer the same warm-calculator fast path the service gives MD.
Registered only when ASE imports, so campaigns on numpy/scipy-only
environments simply don't list it.
"""

from __future__ import annotations

import io

import numpy as np

from repro import ase_bridge
from repro.scenarios.base import (
    ParamSpec, Scenario, ScenarioResult, StructureHandle, register_scenario,
)


class ASERelaxScenario(Scenario):
    name = "ase-relax"
    tags = ("static", "relax", "ase")
    description = ("relax with an ASE optimizer through the "
                   "PytbmdCalculator bridge (needs the 'ase' extra)")
    params = (
        ParamSpec("fmax", float, 0.05, "convergence force threshold (eV/Å)"),
        ParamSpec("max_steps", int, 100, "optimizer step cap"),
        ParamSpec("optimizer", str, "bfgs", "ASE optimizer",
                  choices=("bfgs", "fire")),
        ParamSpec("rattle", float, 0.0,
                  "random displacement (Å) applied before relaxing "
                  "(0 = start from the given geometry)"),
        ParamSpec("seed", int, 11, "rattle RNG seed"),
    )

    def run(self, client, structure: StructureHandle,
            params: dict) -> ScenarioResult:
        import ase
        from ase.optimize import BFGS, FIRE

        src = structure.atoms
        ase_atoms = ase.Atoms(
            symbols=src.symbols,
            positions=np.asarray(src.positions, dtype=float),
            cell=np.asarray(src.cell.matrix, dtype=float),
            pbc=list(src.cell.pbc))
        if params["rattle"] > 0:
            ase_atoms.rattle(stdev=params["rattle"], seed=params["seed"])
        calc = ase_bridge.PytbmdCalculator(structure.calc_spec)
        ase_atoms.calc = calc
        e_initial = float(ase_atoms.get_potential_energy())
        opt_cls = {"bfgs": BFGS, "fire": FIRE}[params["optimizer"]]
        opt = opt_cls(ase_atoms, logfile=io.StringIO())
        converged = bool(opt.run(fmax=params["fmax"],
                                 steps=params["max_steps"]))
        forces = ase_atoms.get_forces()
        metrics = {
            "converged": converged,
            "e_initial_ev": e_initial,
            "e_final_ev": float(ase_atoms.get_potential_energy()),
            "fmax_final": float(np.linalg.norm(forces, axis=1).max()),
            "nsteps": int(opt.get_number_of_steps()),
        }
        return ScenarioResult(
            self.name, metrics=metrics,
            value={**metrics, "state_report": calc.state_report()})


if ase_bridge.HAVE_ASE:  # pragma: no cover - optional-deps CI job
    register_scenario(ASERelaxScenario)

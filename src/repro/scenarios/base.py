"""Scenario protocol and registry.

A *scenario* is one physics workload — EOS, vacancy formation, elastic
constants, Γ phonons, melt-quench — packaged behind one uniform call::

    result = scenario.run(client, structure, params)

*client* is a :class:`~repro.service.client.BatchClient` or
:class:`~repro.service.client.SocketClient` (every evaluation goes
through the batch service, so scenarios ride the resident workers'
state-reuse fast path); *structure* is a :class:`StructureHandle` naming
a structure the campaign runner has already loaded; *params* are the
scenario's resolved parameters.  The return is a
:class:`ScenarioResult`: a ``value`` payload (full detail), flat
``metrics`` (the numbers a campaign table plots) and ``timings``.

Scenarios declare their parameters as :class:`ParamSpec` rows, so the
campaign runner validates a matrix *before* spending any compute on it,
with did-you-mean suggestions on typos — the same contract
:class:`repro.calculators.CalculatorSpec` applies to calculator specs.

Registration is by instance::

    @register_scenario
    class EOSScenario(Scenario):
        name = "eos"
        ...

and lookup by :func:`get_scenario` / :func:`available_scenarios` /
:func:`scenarios_by_tag`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.calculators import suggest_key
from repro.errors import CampaignError
from repro.utils.timing import tick

#: sentinel distinguishing "no default — the param is required"
_REQUIRED = object()

#: process-wide uniquifier for scratch structure ids
_SCRATCH_IDS = itertools.count(1)


@dataclass(frozen=True)
class ParamSpec:
    """One scenario parameter: name, converter, default and doc line."""

    name: str
    conv: type | None = float
    default: object = None
    doc: str = ""
    choices: tuple | None = None

    def resolve(self, raw: dict, scenario: str) -> Any:
        if self.name in raw:
            value = raw[self.name]
            if value is not None and self.conv is not None:
                try:
                    value = self.conv(value)
                except (TypeError, ValueError) as exc:
                    raise CampaignError(
                        f"scenario {scenario!r}: parameter "
                        f"{self.name!r} must be {self.conv.__name__}, "
                        f"got {raw[self.name]!r}") from exc
        elif self.default is not _REQUIRED:
            value = self.default
        else:
            raise CampaignError(
                f"scenario {scenario!r}: parameter {self.name!r} is "
                f"required")
        if self.choices is not None and value not in self.choices:
            raise CampaignError(
                f"scenario {scenario!r}: parameter {self.name!r} must be "
                f"one of {self.choices}, got {value!r}")
        return value


@dataclass(frozen=True)
class StructureHandle:
    """A structure the campaign runner has made service-resident.

    ``structure_id`` addresses the resident copy; ``atoms`` is the
    client-side original (scenarios that need derived geometries —
    vacancies, MD copies — start from it and load scratch structures of
    their own); ``calc_spec`` is the spec dict the structure was loaded
    with, so derived loads evaluate with the identical calculator.
    """

    structure_id: str
    atoms: object
    calc_spec: dict = field(default_factory=dict)

    def scratch_id(self, suffix: str) -> str:
        """Unique structure id for a derived scratch load
        (``'si8::vacancy-3'``).  The counter keeps concurrent campaign
        cells on the same structure from colliding on one resident
        scratch slot (itertools.count is atomic under the GIL)."""
        return f"{self.structure_id}::{suffix}-{next(_SCRATCH_IDS)}"


@dataclass
class ScenarioResult:
    """What one scenario run hands back to the campaign runner.

    ``trajectory`` optionally carries a
    :class:`~repro.md.trajectory.Trajectory` (or any object with its
    ``save(path)``) of the run; the campaign runner persists it as a
    ``.ptrj`` artifact and records only a ``traj_ref`` in the row —
    frame payloads never enter the result tables.
    """

    scenario: str
    value: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)
    trajectory: Any | None = None


class Scenario:
    """Base class: subclasses set ``name``/``tags``/``params`` and
    implement :meth:`run`."""

    name: str = ""
    tags: tuple[str, ...] = ()
    description: str = ""
    params: tuple[ParamSpec, ...] = ()

    def resolve_params(self, raw: dict | None) -> dict:
        """Validate and default a raw param dict against the schema.

        Unknown parameter names are rejected (with a suggestion) —
        a typo'd knob must fail the matrix at expansion time, not
        silently run the scenario at its default.
        """
        raw = dict(raw or {})
        known = [p.name for p in self.params]
        unknown = sorted(set(raw) - set(known))
        if unknown:
            raise CampaignError(
                f"scenario {self.name!r}: unknown parameter(s) {unknown}; "
                f"accepted: {sorted(known)}"
                f"{suggest_key(unknown[0], known)}")
        return {p.name: p.resolve(raw, self.name) for p in self.params}

    def run(self, client: Any, structure: StructureHandle,
            params: dict) -> ScenarioResult:
        raise NotImplementedError  # pragma: no cover

    def describe_params(self) -> list[dict]:
        """Schema rows for ``campaign --list-scenarios`` and the docs."""
        return [{"name": p.name,
                 "type": p.conv.__name__ if p.conv else "any",
                 "default": None if p.default is _REQUIRED else p.default,
                 "required": p.default is _REQUIRED,
                 "choices": list(p.choices) if p.choices else None,
                 "doc": p.doc}
                for p in self.params]


class _timed:
    """``with _timed(result.timings, "md"):`` — phase timing helper."""

    def __init__(self, timings: dict, key: str) -> None:
        self.timings = timings
        self.key = key

    def __enter__(self) -> "_timed":
        self.t0 = tick()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.timings[self.key] = (self.timings.get(self.key, 0.0)
                                  + tick() - self.t0)
        return False


# -- registry --------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register_scenario(cls: type) -> type:
    """Class decorator: instantiate and register under ``cls.name``."""
    inst = cls()
    if not inst.name:
        raise CampaignError(f"scenario class {cls.__name__} has no name")
    _REGISTRY[inst.name] = inst
    return cls


def available_scenarios() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CampaignError(
            f"unknown scenario {name!r}; available: "
            f"{available_scenarios()}"
            f"{suggest_key(name, _REGISTRY)}") from None


def scenarios_by_tag(tag: str) -> tuple[str, ...]:
    return tuple(sorted(n for n, s in _REGISTRY.items() if tag in s.tags))

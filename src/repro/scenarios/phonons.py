"""Γ-point phonon scenario: frequencies, stability, ASR residual.

One finite-difference dynamical matrix (6N remote force evaluations
against a scratch service load — consecutive single-atom displacements
are exactly the resident calculator's state-reuse fast path), then the
eigenspectrum and the acoustic-sum-rule violation as a force-consistency
diagnostic.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.phonons import acoustic_sum_rule_violation, dynamical_matrix
from repro.scenarios.base import (
    ParamSpec, Scenario, ScenarioResult, StructureHandle, register_scenario,
)
from repro.service.calculator import RemoteCalculator
from repro.units import FORCE_TO_ACC


@register_scenario
class PhononScenario(Scenario):
    name = "phonons"
    tags = ("static", "phonons")
    description = ("Γ-point phonon spectrum and acoustic-sum-rule "
                   "residual by finite differences")
    params = (
        ParamSpec("displacement", float, 0.01,
                  "finite-difference displacement (Å)"),
        ParamSpec("imaginary_tol_thz", float, 0.1,
                  "|ν| below which a negative mode counts as numerical "
                  "noise, not an instability"),
    )

    def run(self, client, structure: StructureHandle,
            params: dict) -> ScenarioResult:
        atoms = structure.atoms.copy()
        scratch = structure.scratch_id("phonons")
        client.load(scratch, atoms, calc=structure.calc_spec)
        try:
            calc = RemoteCalculator(client, scratch)
            d = dynamical_matrix(atoms, calc,
                                 displacement=params["displacement"])
        finally:
            client.unload(scratch)
        # same convention as repro.analysis.phonons.gamma_frequencies
        # (computed from d directly so the 6N-eval matrix is built once)
        omega2 = np.linalg.eigvalsh(d) * FORCE_TO_ACC          # rad²/fs²
        nu = np.sign(omega2) * np.sqrt(np.abs(omega2)) / (2 * np.pi) * 1e3
        asr = acoustic_sum_rule_violation(d, atoms.masses)
        tol = params["imaginary_tol_thz"]
        n_imag = int(np.sum(nu < -tol))
        metrics = {"nu_max_thz": float(nu.max()),
                   "n_imaginary": n_imag,
                   "asr_violation": float(asr),
                   "dynamically_stable": bool(n_imag == 0)}
        return ScenarioResult(
            self.name, metrics=metrics,
            value={"frequencies_thz": [float(x) for x in np.sort(nu)],
                   **metrics})

"""Campaign matrices: expand (structure × scenario × params), run, record.

A campaign is a declarative TOML (or JSON) matrix::

    name = "si-phases"

    [calc]                        # campaign-default calculator spec
    model = "sw-si"

    [structures.si-diamond]
    kind = "diamond"
    element = "Si"

    [structures.si-compressed]
    kind = "diamond"
    a = 5.1

    [[scenarios]]
    name = "eos"
    [scenarios.params]            # fixed parameters
    npoints = 7

    [[scenarios]]
    name = "vacancy"
    structures = ["si-diamond"]   # restrict to a structure subset
    [scenarios.grid]              # cross-product parameter grid
    relax_steps = [0, 10]

:func:`load_campaign_spec` reads it, :func:`expand_matrix` turns it into
concrete cells (every structure × every scenario entry × every grid
point — validated up front, so a typo'd scenario name or parameter
fails *before* any compute), and :func:`run_campaign` executes the
cells through one :class:`~repro.service.client.BatchClient` (an
in-process :class:`~repro.service.service.BatchService` by default, or
any client you pass — e.g. a :class:`~repro.service.client.SocketClient`
to a running ``repro serve``) with
:func:`repro.parallel.pool.map_tasks` fan-out.

Every cell outcome — success or failure — is normalised into one
:class:`~repro.service.protocol.Result` envelope row (``status``,
``seconds``, ``value``, ``metrics``, ``error``); a diverging or
misconfigured cell is recorded as ``failed`` and the rest of the matrix
keeps running.  :mod:`repro.scenarios.store` writes the rows to
JSONL/SQLite and queries them back.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro import obs
from repro.calculators import CalculatorSpec, suggest_key
from repro.errors import CampaignError, ReproError
from repro.parallel.pool import map_tasks
from repro.scenarios.base import StructureHandle, get_scenario
from repro.service.protocol import Result
from repro.utils.timing import tick, wall_now

#: structure builders a matrix can name in ``kind = "..."``
STRUCTURE_KINDS = ("diamond", "beta-tin", "fcc", "bcc", "sc", "xyz")


def build_structure(sdef: dict, name: str = "?"):
    """One matrix ``[structures.<name>]`` table → an Atoms object."""
    from repro import geometry

    sdef = dict(sdef or {})
    sdef.pop("calc", None)                       # handled by the expander
    kind = sdef.pop("kind", "diamond")
    repeat = sdef.pop("repeat", None)
    if kind not in STRUCTURE_KINDS:
        raise CampaignError(
            f"structure {name!r}: unknown kind {kind!r}; choose from "
            f"{STRUCTURE_KINDS}{suggest_key(kind, STRUCTURE_KINDS)}")
    try:
        if kind == "xyz":
            path = sdef.pop("file", None)
            if not path:
                raise CampaignError(
                    f"structure {name!r}: kind 'xyz' needs a 'file' path")
            atoms = geometry.read_xyz(path)
        elif kind == "diamond":
            element = sdef.pop("element", "Si")
            a = sdef.pop("a", None)
            atoms = (geometry.diamond_cubic(element, a=a) if a is not None
                     else geometry.diamond_cubic(element))
        elif kind == "beta-tin":
            kwargs = {k: sdef.pop(k) for k in ("a", "c_over_a")
                      if k in sdef}
            atoms = geometry.beta_tin_silicon(**kwargs)
        else:
            element = sdef.pop("element", "Si")
            a = sdef.pop("a", None)
            builder = {"fcc": geometry.fcc, "bcc": geometry.bcc,
                       "sc": geometry.simple_cubic}[kind]
            atoms = (builder(element, a) if a is not None
                     else builder(element))
    except CampaignError:
        raise
    except ReproError as exc:
        raise CampaignError(f"structure {name!r}: {exc}") from exc
    except TypeError as exc:
        raise CampaignError(
            f"structure {name!r}: bad fields for kind {kind!r}: {exc}"
        ) from exc
    if sdef:
        raise CampaignError(
            f"structure {name!r}: unknown field(s) {sorted(sdef)} for "
            f"kind {kind!r}")
    if repeat is not None:
        atoms = geometry.supercell(atoms, repeat)
    return atoms


@dataclass(frozen=True)
class CampaignCell:
    """One fully resolved (structure, scenario, params) matrix point."""

    cell_id: str
    structure: str
    scenario: str
    params: dict
    calc_spec: dict


@dataclass
class CampaignSpec:
    """A parsed campaign matrix (see the module docstring for the
    on-disk format)."""

    name: str = "campaign"
    structures: dict = field(default_factory=dict)
    scenarios: list = field(default_factory=list)
    calc: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise CampaignError("campaign matrix must be a table/object")
        known = {"name", "structures", "scenarios", "calc"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise CampaignError(
                f"unknown campaign field(s) {unknown}; accepted: "
                f"{sorted(known)}{suggest_key(unknown[0], known)}")
        structures = data.get("structures") or {}
        scenarios = data.get("scenarios") or []
        if not structures:
            raise CampaignError("campaign has no [structures.*] entries")
        if not scenarios:
            raise CampaignError("campaign has no [[scenarios]] entries")
        return cls(name=str(data.get("name", "campaign")),
                   structures=dict(structures),
                   scenarios=list(scenarios),
                   calc=dict(data.get("calc") or {}))


def load_campaign_spec(path) -> CampaignSpec:
    """Read a ``.toml`` or ``.json`` campaign matrix file."""
    path = str(path)
    try:
        if path.endswith(".toml"):
            import tomllib

            with open(path, "rb") as fh:
                data = tomllib.load(fh)
        elif path.endswith(".json"):
            with open(path) as fh:
                data = json.load(fh)
        else:
            raise CampaignError(
                f"campaign matrix {path!r} must be .toml or .json")
    except CampaignError:
        raise
    except OSError as exc:
        raise CampaignError(f"cannot read campaign matrix: {exc}") from exc
    except ValueError as exc:     # tomllib.TOMLDecodeError subclasses it
        raise CampaignError(
            f"campaign matrix {path!r} does not parse: {exc}") from exc
    return CampaignSpec.from_dict(data)


def _grid_points(grid: dict) -> list[dict]:
    """Cross product of ``{param: [values...]}`` → list of param dicts."""
    points = [{}]
    for key in sorted(grid):
        values = grid[key]
        if not isinstance(values, (list, tuple)) or not values:
            raise CampaignError(
                f"grid entry {key!r} must be a non-empty list, got "
                f"{values!r}")
        points = [{**p, key: v} for p in points for v in values]
    return points


def expand_matrix(spec: CampaignSpec) -> list[CampaignCell]:
    """(structure × scenario × grid) → validated cells.

    Everything that can fail from the matrix alone fails here —
    unknown structures/scenarios/params, bad calc specs — so
    :func:`run_campaign` only ever sees runnable cells.
    """
    cells: list[CampaignCell] = []
    for name, sdef in spec.structures.items():
        build_structure(sdef, name)               # fail-fast validation
    for entry in spec.scenarios:
        if not isinstance(entry, dict) or "name" not in entry:
            raise CampaignError(
                f"each [[scenarios]] entry needs a 'name', got {entry!r}")
        unknown = sorted(set(entry) - {"name", "params", "grid",
                                       "structures"})
        if unknown:
            raise CampaignError(
                f"scenario entry {entry['name']!r}: unknown field(s) "
                f"{unknown}; accepted: ['grid', 'name', 'params', "
                f"'structures']")
        scenario = get_scenario(entry["name"])
        wanted = entry.get("structures")
        if wanted is not None:
            missing = sorted(set(wanted) - set(spec.structures))
            if missing:
                raise CampaignError(
                    f"scenario {scenario.name!r} names unknown "
                    f"structure(s) {missing}; defined: "
                    f"{sorted(spec.structures)}")
        targets = list(wanted) if wanted is not None \
            else list(spec.structures)
        fixed = dict(entry.get("params") or {})
        for point in _grid_points(dict(entry.get("grid") or {})):
            params = scenario.resolve_params({**fixed, **point})
            for sname in targets:
                calc = {**spec.calc,
                        **dict(spec.structures[sname].get("calc") or {})}
                # validate now; the runner re-sends the plain dict
                CalculatorSpec.from_dict(
                    calc, context=f"campaign cell {sname}/{scenario.name}")
                suffix = "" if not point else \
                    "[" + ",".join(f"{k}={point[k]}"
                                   for k in sorted(point)) + "]"
                cells.append(CampaignCell(
                    cell_id=f"{sname}/{scenario.name}{suffix}",
                    structure=sname, scenario=scenario.name,
                    params=params, calc_spec=calc))
    return cells


def _store_trajectory(traj_dir, cell_id: str, trajectory) -> str:
    """Persist a scenario trajectory as ``<traj_dir>/<cell>.ptrj``.

    Returns the file name (the row's ``traj_ref``) — resolve it back to
    a path with :func:`repro.scenarios.store.resolve_traj_ref`.
    """
    import os
    import re

    os.makedirs(traj_dir, exist_ok=True)
    name = re.sub(r"[^\w.=,-]+", "_", cell_id) + ".ptrj"
    trajectory.save(os.path.join(traj_dir, name))
    return name


@dataclass
class CampaignRun:
    """The in-memory outcome of :func:`run_campaign`."""

    name: str
    cells: list[dict]
    seconds: float
    created: float
    metrics: dict = field(default_factory=dict)

    @property
    def counts(self) -> dict:
        ok = sum(1 for c in self.cells if c["status"] == "ok")
        return {"total": len(self.cells), "ok": ok,
                "failed": len(self.cells) - ok}

    def summary(self) -> dict:
        return {"name": self.name, "created": self.created,
                "seconds": self.seconds, **self.counts,
                "metrics": self.metrics}


def run_campaign(spec: CampaignSpec, *, client=None, nworkers: int = 1,
                 service_workers: int = 2, log=None,
                 traj_dir=None) -> CampaignRun:
    """Run every cell of *spec*; never aborts on a failing cell.

    Parameters
    ----------
    client :
        A batch-service client.  ``None`` (the default) builds a
        private in-process :class:`~repro.service.service.BatchService`
        with *service_workers* resident workers and tears it down at
        the end.  A :class:`~repro.service.client.SocketClient` is
        accepted but serialised (it is not thread-safe).
    nworkers :
        Campaign-level fan-out: cells dispatch through
        :func:`repro.parallel.pool.map_tasks` on a thread pool
        (scenario code is numpy-bound and the service core is
        thread-safe; the resident workers do the heavy lifting).
    log :
        Optional ``callable(str)`` for per-cell progress lines.
    traj_dir :
        Directory for trajectory artifacts.  Scenarios that return a
        :attr:`~repro.scenarios.base.ScenarioResult.trajectory` get it
        written there as ``<cell>.ptrj`` and the row's value carries
        the ``traj_ref`` file name (never frame payloads).  ``None``
        (the default) drops scenario trajectories.
    """
    from repro.service.client import BatchClient, SocketClient

    cells = expand_matrix(spec)
    own_service = None
    if client is None:
        from repro.service.service import BatchService

        own_service = BatchService(nworkers=service_workers)
        client = BatchClient(own_service)
    client_lock = threading.Lock() if isinstance(client, SocketClient) \
        else None

    # load every distinct (structure, calc spec) pair once; every cell
    # addresses the resident copy by id, so all cells on one structure
    # share its warm calculator state
    handles: dict[tuple, StructureHandle] = {}
    structure_calcs = sorted({(c.structure,
                               json.dumps(c.calc_spec, sort_keys=True))
                              for c in cells})
    t0 = tick()
    created = wall_now()
    per_name_count: dict[str, int] = {}
    for sname, calc_json in structure_calcs:
        k = per_name_count.get(sname, 0)
        per_name_count[sname] = k + 1
        sid = sname if k == 0 else f"{sname}#{k}"
        atoms = build_structure(spec.structures[sname], sname)
        calc = json.loads(calc_json)
        client.load(sid, atoms, calc=calc)
        handles[(sname, calc_json)] = StructureHandle(
            structure_id=sid, atoms=atoms, calc_spec=calc)

    def run_cell(cell: CampaignCell) -> dict:
        handle = handles[(cell.structure,
                          json.dumps(cell.calc_spec, sort_keys=True))]
        scenario = get_scenario(cell.scenario)
        row = {"cell": cell.cell_id, "structure": cell.structure,
               "scenario": cell.scenario, "params": dict(cell.params)}
        t_cell = tick()
        try:
            with obs.span("campaign.cell") as sp:
                sp.set(cell=cell.cell_id)
                if client_lock is not None:
                    with client_lock:
                        result = scenario.run(client, handle, cell.params)
                else:
                    result = scenario.run(client, handle, cell.params)
            status = "ok"
            # merge_* (not the success() kwargs) so the metrics/timings
            # slots exist on the row even when a scenario returns none
            payload = Result.success(result.value).merge_metrics(
                **result.metrics).merge_timings(
                **{**result.timings, "seconds": tick() - t_cell})
            if traj_dir is not None and result.trajectory is not None:
                payload["traj_ref"] = _store_trajectory(
                    traj_dir, cell.cell_id, result.trajectory)
        except Exception as exc:        # noqa: BLE001 - recorded, not raised
            obs.counter_inc("campaign.cell_failures")
            status = "failed"
            payload = Result.failure(exc, op=cell.scenario).merge_timings(
                seconds=tick() - t_cell)
        # rows persist the envelope fields flat; the per-request id slot
        # is the wire's concern, not the artifact's
        row.update(status=status, **{k: v for k, v in dict.items(payload)
                                     if k != "id"})
        if log is not None:
            mark = "ok    " if status == "ok" else "FAILED"
            log(f"  {mark} {cell.cell_id:40s} "
                f"{row['timings']['seconds']:8.2f}s")
        return row

    try:
        from concurrent.futures import ThreadPoolExecutor

        if nworkers > 1:
            with ThreadPoolExecutor(max_workers=nworkers) as pool:
                rows = map_tasks(run_cell, cells, nworkers=nworkers,
                                 executor=pool)
        else:
            rows = map_tasks(run_cell, cells)
        metrics = {}
        try:
            metrics = {"service_stats": client.stats()}
        except ReproError:       # pragma: no cover - stats are best-effort
            pass
        snap = obs.get_registry().snapshot()
        if snap.get("counters"):
            metrics["obs"] = snap
        return CampaignRun(name=spec.name, cells=rows,
                           seconds=tick() - t0,
                           created=created, metrics=metrics)
    finally:
        if own_service is not None:
            own_service.close()


QUICK_MATRIX = {
    # the built-in `campaign --quick` smoke: 2 structures × 2 scenarios
    # on the classical baseline — exercises expansion, service fan-out
    # and the artifact store in a couple of seconds
    "name": "quick-smoke",
    "calc": {"model": "sw-si"},
    "structures": {
        "si-diamond": {"kind": "diamond", "element": "Si"},
        "si-compressed": {"kind": "diamond", "element": "Si", "a": 5.2},
    },
    "scenarios": [
        {"name": "eos", "params": {"npoints": 5, "amplitude": 0.03}},
        {"name": "vacancy", "params": {"relax_steps": 2}},
    ],
}

"""Melt-quench scenario: Langevin melt, quench, then liquid analysis.

Two thermostatted MD legs through the service-resident calculator
(every step is a positions-only update — the MD fast path), followed by
g(r) / first-peak structure analysis on the quenched trajectory and the
mean-squared-displacement / Einstein diffusion coefficient of the melt
leg.  Deliberately small defaults: a campaign cell should answer "did
it melt, what liquid did we get" in seconds — production trajectories
belong to ``repro.cli md``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.msd import diffusion_coefficient, mean_squared_displacement
from repro.analysis.rdf import first_peak, radial_distribution
from repro.md import LangevinDynamics, MDDriver, maxwell_boltzmann_velocities
from repro.scenarios.base import (
    ParamSpec, Scenario, ScenarioResult, StructureHandle, _timed,
    register_scenario,
)
from repro.service.calculator import RemoteCalculator


@register_scenario
class MeltQuenchScenario(Scenario):
    name = "melt-quench"
    tags = ("dynamic", "md", "liquid")
    description = ("Langevin melt + quench with g(r), first-peak and "
                   "diffusion analysis of the trajectory")
    params = (
        ParamSpec("melt_steps", int, 60, "MD steps in the melt leg"),
        ParamSpec("quench_steps", int, 60, "MD steps in the quench leg"),
        ParamSpec("dt_fs", float, 1.0, "time step (fs)"),
        ParamSpec("melt_temperature", float, 2500.0, "melt target (K)"),
        ParamSpec("quench_temperature", float, 300.0, "quench target (K)"),
        ParamSpec("friction", float, 0.05, "Langevin friction (fs⁻¹)"),
        ParamSpec("seed", int, 7, "velocity/thermostat RNG seed"),
        ParamSpec("sample_interval", int, 5,
                  "trajectory sampling stride (steps)"),
        ParamSpec("r_max", float, None,
                  "g(r) histogram range (Å); default 0.45·min cell edge"),
        ParamSpec("nbins", int, 60, "g(r) bins"),
    )

    def run(self, client, structure: StructureHandle,
            params: dict) -> ScenarioResult:
        atoms = structure.atoms.copy()
        maxwell_boltzmann_velocities(atoms, params["melt_temperature"],
                                     seed=params["seed"])
        scratch = structure.scratch_id("melt")
        client.load(scratch, atoms, calc=structure.calc_spec)
        timings: dict = {}
        samples: list[dict] = []
        interval = max(1, params["sample_interval"])

        def sampler(step, at, data):
            samples.append({"leg": leg, "time_fs": data["time_fs"],
                            "positions": at.positions.copy(),
                            "frame": at.copy(),
                            "temperature": data["temperature"],
                            "epot": data["epot"]})

        try:
            calc = RemoteCalculator(client, scratch)
            leg = "melt"
            with _timed(timings, "melt_s"):
                melt = MDDriver(
                    atoms, calc,
                    LangevinDynamics(dt=params["dt_fs"],
                                     temperature=params["melt_temperature"],
                                     friction=params["friction"],
                                     seed=params["seed"]),
                    observers=[(sampler, interval)])
                melt.run(params["melt_steps"])
            leg = "quench"
            with _timed(timings, "quench_s"):
                quench = MDDriver(
                    atoms, calc,
                    LangevinDynamics(dt=params["dt_fs"],
                                     temperature=params["quench_temperature"],
                                     friction=params["friction"],
                                     seed=params["seed"] + 1),
                    observers=[(sampler, interval)])
                quench.run(params["quench_steps"])
        finally:
            client.unload(scratch)

        with _timed(timings, "analysis_s"):
            r_max = params["r_max"]
            if r_max is None:
                lengths = np.linalg.norm(atoms.cell.matrix, axis=1)
                r_max = 0.45 * float(lengths.min())
            quench_frames = [s["frame"] for s in samples
                             if s["leg"] == "quench"]
            r, g = radial_distribution(quench_frames or [atoms], r_max,
                                       nbins=params["nbins"])
            peak = first_peak(r, g)
            melt_samples = [s for s in samples if s["leg"] == "melt"]
            diffusion = None
            if len(melt_samples) >= 6:
                pos = np.stack([s["positions"] for s in melt_samples])
                times = np.array([s["time_fs"] for s in melt_samples])
                msd = mean_squared_displacement(pos, origins=3)
                diffusion = diffusion_coefficient(times, msd)
        last = samples[-1]
        metrics = {"first_peak_aa": float(peak),
                   "final_temperature_k": float(last["temperature"]),
                   "epot_final_ev_atom": float(last["epot"]) / len(atoms),
                   "nsamples": len(samples)}
        if diffusion is not None:
            metrics["diffusion_melt_aa2_fs"] = float(diffusion)
        value = {"r": [float(x) for x in r], "g": [float(x) for x in g],
                 "legs": {"melt": params["melt_steps"],
                          "quench": params["quench_steps"]},
                 **metrics}
        # hand the sampled frames to the runner as a real trajectory;
        # steps renumber globally (each MD leg counts from 0 itself)
        from repro.md.trajectory import Trajectory
        traj = Trajectory()
        for i, s in enumerate(samples):
            traj.append(s["frame"], step=i, time_fs=s["time_fs"],
                        epot=s["epot"])
        return ScenarioResult(self.name, value=value, metrics=metrics,
                              timings=timings, trajectory=traj)

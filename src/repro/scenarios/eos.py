"""EOS scenario: server-side strain sweep + Birch–Murnaghan fit.

One ``sweep`` request per cell — the whole E(ε) curve is evaluated by
the structure's resident calculator with warm state (see
:func:`repro.analysis.strain_sweep.strain_sweep`), and the fitted
equation of state lands in the metrics.
"""

from __future__ import annotations

from repro.scenarios.base import (
    ParamSpec, Scenario, ScenarioResult, StructureHandle, register_scenario,
)


@register_scenario
class EOSScenario(Scenario):
    name = "eos"
    tags = ("static", "eos", "elastic")
    description = ("strain sweep + equation-of-state fit "
                   "(V0, E0, B0, B0') on the resident structure")
    params = (
        ParamSpec("amplitude", float, 0.04, "max |strain| of the path"),
        ParamSpec("npoints", int, 7, "strain points across ±amplitude"),
        ParamSpec("mode", str, "volumetric", "strain path",
                  choices=("volumetric", "uniaxial", "shear")),
        ParamSpec("axis", int, 2, "strained axis (uniaxial/shear)"),
        ParamSpec("fit", str, "birch", "EOS form fitted to E(V)",
                  choices=("birch", "murnaghan", "none")),
        ParamSpec("energy_ref", float, 0.0,
                  "per-atom reference subtracted before the fit"),
    )

    def run(self, client, structure: StructureHandle,
            params: dict) -> ScenarioResult:
        resp = client.sweep(structure.structure_id,
                            amplitude=params["amplitude"],
                            npoints=params["npoints"],
                            mode=params["mode"], axis=params["axis"],
                            fit=params["fit"],
                            energy_ref=params["energy_ref"])
        value = dict(resp.value)
        metrics = {"npoints": len(value.get("points", ()))}
        eos = value.get("eos")
        if eos:
            metrics.update(
                e0_ev=eos["e0"], v0_aa3=eos["v0"], b0_gpa=eos["b0_gpa"],
                b0_prime=eos["b0_prime"], fit_residual=eos["residual"])
        return ScenarioResult(self.name, value=value, metrics=metrics,
                              timings=dict(resp.timings))

"""Vacancy-formation scenario.

E_f = E(N−1) − (N−1)/N · E(N) (see
:func:`repro.geometry.defects.vacancy_formation_energy`): the perfect
cell evaluates on its resident calculator, the vacancy cell is loaded
as a scratch structure with the *same* calculator spec, optionally
relaxed with server-side ``relax_step`` damped descent, and unloaded
again whatever happens — a failing cell must not leak resident state.
"""

from __future__ import annotations

from repro.geometry.defects import make_vacancy, vacancy_formation_energy
from repro.scenarios.base import (
    ParamSpec, Scenario, ScenarioResult, StructureHandle, register_scenario,
)


@register_scenario
class VacancyScenario(Scenario):
    name = "vacancy"
    tags = ("static", "defects")
    description = ("unrelaxed/relaxed vacancy formation energy "
                   "via a scratch service load")
    params = (
        ParamSpec("index", int, 0, "atom removed from the perfect cell"),
        ParamSpec("relax_steps", int, 0,
                  "damped-descent steps on the defect cell (0 = unrelaxed)"),
        ParamSpec("step_size", float, 0.05, "descent step size (Å²/eV)"),
        ParamSpec("max_step", float, 0.1, "per-atom displacement cap (Å)"),
    )

    def run(self, client, structure: StructureHandle,
            params: dict) -> ScenarioResult:
        perfect = client.evaluate(structure.structure_id, forces=False)
        n_perfect = int(perfect["natoms"])
        defect_atoms = make_vacancy(structure.atoms.copy(),
                                    index=params["index"])
        scratch = structure.scratch_id("vacancy")
        client.load(scratch, defect_atoms, calc=structure.calc_spec)
        try:
            fmax = None
            for _ in range(params["relax_steps"]):
                step = client.relax_step(scratch,
                                         step_size=params["step_size"],
                                         max_step=params["max_step"])
                fmax = float(step["fmax"])
            defect = client.evaluate(scratch, forces=False)
        finally:
            client.unload(scratch)
        e_perfect = float(perfect["energy"])
        e_defect = float(defect["energy"])
        e_f = vacancy_formation_energy(e_defect, e_perfect, n_perfect)
        metrics = {"formation_ev": e_f, "e_perfect_ev": e_perfect,
                   "e_defect_ev": e_defect}
        if fmax is not None:
            metrics["fmax_final"] = fmax
        return ScenarioResult(
            self.name, metrics=metrics,
            value={"natoms_perfect": n_perfect,
                   "natoms_defect": int(defect["natoms"]),
                   "removed_index": params["index"],
                   "relax_steps": params["relax_steps"], **metrics})

"""Cubic elastic-constants scenario (C11, C12, C44, B).

:func:`repro.analysis.elastic.cubic_elastic_constants` drives a
calculator *factory* so strained evaluations are cache-isolated; here
each factory call returns a fresh
:class:`~repro.service.calculator.RemoteCalculator` bound to one
scratch service load of the structure.  The resident calculator's
:class:`~repro.state.CalculatorState` contract handles the strained
cells correctly (a cell change invalidates exactly what it must — the
state-parity suite guarantees it), so sharing the resident state across
the strain points is safe and keeps the sweep warm.
"""

from __future__ import annotations

from repro.analysis.elastic import born_stability_cubic, cubic_elastic_constants
from repro.scenarios.base import (
    ParamSpec, Scenario, ScenarioResult, StructureHandle, register_scenario,
)
from repro.service.calculator import RemoteCalculator


@register_scenario
class ElasticScenario(Scenario):
    name = "elastic"
    tags = ("static", "elastic")
    description = ("cubic elastic constants C11/C12/C44 and bulk modulus "
                   "by strain-energy curvature")
    params = (
        ParamSpec("delta", float, 0.01, "strain amplitude"),
        ParamSpec("n_points", int, 2, "curvature fit points per branch"),
        ParamSpec("relax_internal_c44", bool, True,
                  "relax internal coordinates under the C44 shear "
                  "(required for diamond lattices)"),
    )

    def run(self, client, structure: StructureHandle,
            params: dict) -> ScenarioResult:
        scratch = structure.scratch_id("elastic")
        client.load(scratch, structure.atoms.copy(),
                    calc=structure.calc_spec)
        try:
            out = cubic_elastic_constants(
                structure.atoms.copy(),
                lambda: RemoteCalculator(client, scratch),
                delta=params["delta"], n_points=params["n_points"],
                relax_internal_c44=params["relax_internal_c44"])
        finally:
            client.unload(scratch)
        stable = born_stability_cubic(out["c11"], out["c12"], out["c44"])
        metrics = {"c11_gpa": out["c11_gpa"], "c12_gpa": out["c12_gpa"],
                   "c44_gpa": out["c44_gpa"],
                   "bulk_gpa": out["bulk_modulus_gpa"],
                   "born_stable": bool(stable)}
        return ScenarioResult(self.name, value=dict(out), metrics=metrics)

"""Campaign artifacts: one queryable JSONL or SQLite file per run.

JSONL layout — line 1 is the campaign header, every further line one
cell row::

    {"kind": "campaign", "name": ..., "created": ..., "seconds": ...,
     "total": ..., "ok": ..., "failed": ..., "metrics": {...}}
    {"kind": "cell", "cell": "si-diamond/eos", "structure": ...,
     "scenario": ..., "params": {...}, "status": "ok"|"failed",
     "ok": ..., "value": {...}, "metrics": {...},
     "timings": {"seconds": ...}, "error": null | {...}}

The SQLite layout is the same data normalised into two tables
(``campaigns``, ``cells``) with the nested dicts as JSON columns, so
``sqlite3 artifact.sqlite "SELECT cell, status, seconds FROM cells
WHERE scenario='eos'"`` works out of the box.

:func:`read_artifact` / :func:`query_cells` dispatch on the file
suffix, so analysis code is format-agnostic.
"""

from __future__ import annotations

import json
import sqlite3

import numpy as np

from repro.errors import CampaignError


def _jsonable(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    # json.dumps requires its default hook to raise TypeError; a custom
    # error class here would break the json module's own fallbacks
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")  # reprolint: disable=error-discipline


def _dump(obj) -> str:
    return json.dumps(obj, default=_jsonable, sort_keys=True)


def _cell_row(row: dict) -> dict:
    # not a wire response: this is the persisted JSONL row *schema* (the
    # docstring above), which stores the envelope fields flat by design
    return {"kind": "cell", "cell": row["cell"],  # reprolint: disable=result-envelope
            "structure": row["structure"], "scenario": row["scenario"],
            "params": row.get("params") or {},
            "status": row["status"], "ok": row["status"] == "ok",
            "value": row.get("value") or {},
            "metrics": row.get("metrics") or {},
            "timings": row.get("timings") or {},
            "error": row.get("error")}


def write_jsonl(path, run) -> str:
    """Write a :class:`~repro.scenarios.campaign.CampaignRun` as JSONL."""
    path = str(path)
    with open(path, "w") as fh:
        fh.write(_dump({"kind": "campaign", **run.summary()}) + "\n")
        for row in run.cells:
            fh.write(_dump(_cell_row(row)) + "\n")
    return path


_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    name     TEXT NOT NULL,
    created  REAL NOT NULL,
    seconds  REAL NOT NULL,
    total    INTEGER NOT NULL,
    ok       INTEGER NOT NULL,
    failed   INTEGER NOT NULL,
    metrics_json TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS cells (
    campaign  TEXT NOT NULL,
    cell      TEXT NOT NULL,
    structure TEXT NOT NULL,
    scenario  TEXT NOT NULL,
    status    TEXT NOT NULL,
    seconds   REAL,
    params_json  TEXT NOT NULL DEFAULT '{}',
    value_json   TEXT NOT NULL DEFAULT '{}',
    metrics_json TEXT NOT NULL DEFAULT '{}',
    timings_json TEXT NOT NULL DEFAULT '{}',
    error_type    TEXT,
    error_message TEXT
);
CREATE INDEX IF NOT EXISTS idx_cells_lookup
    ON cells (campaign, structure, scenario, status);
"""


def write_sqlite(path, run) -> str:
    """Write (append) a campaign run into a SQLite artifact."""
    path = str(path)
    con = sqlite3.connect(path)
    try:
        con.executescript(_SCHEMA)
        s = run.summary()
        con.execute(
            "INSERT INTO campaigns (name, created, seconds, total, ok, "
            "failed, metrics_json) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (s["name"], s["created"], s["seconds"], s["total"], s["ok"],
             s["failed"], _dump(s["metrics"])))
        for row in run.cells:
            err = row.get("error") or {}
            con.execute(
                "INSERT INTO cells (campaign, cell, structure, scenario, "
                "status, seconds, params_json, value_json, metrics_json, "
                "timings_json, error_type, error_message) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (run.name, row["cell"], row["structure"], row["scenario"],
                 row["status"], (row.get("timings") or {}).get("seconds"),
                 _dump(row.get("params") or {}),
                 _dump(row.get("value") or {}),
                 _dump(row.get("metrics") or {}),
                 _dump(row.get("timings") or {}),
                 err.get("type"), err.get("message")))
        con.commit()
    finally:
        con.close()
    return path


def _read_jsonl(path):
    campaign = None
    cells = []
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            row = json.loads(line)
            if row.get("kind") == "campaign":
                campaign = row
            else:
                cells.append(row)
    if campaign is None:
        raise CampaignError(f"{path}: no campaign header line")
    return campaign, cells


def _read_sqlite(path):
    con = sqlite3.connect(path)
    con.row_factory = sqlite3.Row
    try:
        camp = con.execute(
            "SELECT * FROM campaigns ORDER BY created DESC LIMIT 1"
        ).fetchone()
        if camp is None:
            raise CampaignError(f"{path}: no campaign rows")
        campaign = {"kind": "campaign", "name": camp["name"],
                    "created": camp["created"], "seconds": camp["seconds"],
                    "total": camp["total"], "ok": camp["ok"],
                    "failed": camp["failed"],
                    "metrics": json.loads(camp["metrics_json"])}
        cells = []
        for r in con.execute("SELECT * FROM cells WHERE campaign = ?",
                             (camp["name"],)):
            error = None
            if r["error_type"] is not None:
                error = {"type": r["error_type"],
                         "message": r["error_message"]}
            # reconstructing stored artifact rows, not building a response
            cells.append({"kind": "cell", "cell": r["cell"],  # reprolint: disable=result-envelope
                          "structure": r["structure"],
                          "scenario": r["scenario"],
                          "status": r["status"],
                          "ok": r["status"] == "ok",
                          "params": json.loads(r["params_json"]),
                          "value": json.loads(r["value_json"]),
                          "metrics": json.loads(r["metrics_json"]),
                          "timings": json.loads(r["timings_json"]),
                          "error": error})
        return campaign, cells
    finally:
        con.close()


def read_artifact(path):
    """``(campaign_header, cell_rows)`` from a JSONL or SQLite artifact."""
    path = str(path)
    if path.endswith(".jsonl"):
        return _read_jsonl(path)
    if path.endswith((".sqlite", ".db")):
        return _read_sqlite(path)
    raise CampaignError(
        f"unknown artifact format {path!r} (expected .jsonl, .sqlite "
        f"or .db)")


def resolve_traj_ref(artifact_path, row, traj_dir=None):
    """Path of the ``.ptrj`` trajectory a cell row references, or None.

    A row's ``value.traj_ref`` is the file name the campaign runner
    wrote; by convention it lives next to the artifact (or in an
    explicit *traj_dir*).  Returns the resolved path when the file
    exists, ``None`` when the row carries no trajectory.
    """
    import os

    ref = (row.get("value") or {}).get("traj_ref")
    if not ref:
        return None
    base = os.fspath(traj_dir) if traj_dir is not None \
        else os.path.dirname(os.path.abspath(os.fspath(artifact_path)))
    path = os.path.join(base, ref)
    if not os.path.exists(path):
        raise CampaignError(
            f"cell {row.get('cell')!r} references trajectory {ref!r} "
            f"but {path} does not exist (pass traj_dir=)")
    return path


def query_cells(path, structure: str | None = None,
                scenario: str | None = None,
                status: str | None = None) -> list[dict]:
    """Filter an artifact's cell rows by structure/scenario/status."""
    _, cells = read_artifact(path)
    out = []
    for c in cells:
        if structure is not None and c["structure"] != structure:
            continue
        if scenario is not None and c["scenario"] != scenario:
            continue
        if status is not None and c["status"] != status:
            continue
        out.append(c)
    return out

"""Ring statistics of the bond network (networkx-backed).

Counts shortest-path (King-style, via minimum cycle basis) rings up to a
maximum size — the pentagon/hexagon/heptagon census that structural
analyses of sp² carbon report.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import GeometryError
from repro.neighbors import neighbor_list


def bond_graph(atoms, r_cut: float) -> nx.Graph:
    """Undirected bond graph within *r_cut* (multiple periodic images of
    the same pair collapse onto one edge; adequate for clusters and large
    cells)."""
    nl = neighbor_list(atoms, r_cut, method="brute")
    g = nx.Graph()
    g.add_nodes_from(range(len(atoms)))
    for i, j in zip(nl.i, nl.j):
        if i != j:
            g.add_edge(int(i), int(j))
    return g


def ring_statistics(atoms, r_cut: float, max_size: int = 10) -> dict[int, int]:
    """Histogram {ring size: count} by the shortest-cycle-per-edge census.

    For every bond, the shortest cycle containing it (shortest path
    between its endpoints with the bond removed, plus the bond) is
    recorded; distinct cycles are counted once.  This is the King-style
    ring census chemists read off a structure drawing — unlike a minimum
    *cycle basis*, it is face-faithful for sp² networks on periodic cells
    (a basis may swap a heptagon for an equivalent longer generator).
    All tied shortest cycles per bond are recorded (a Stone–Wales bond is
    shared by two heptagons).  Rings larger than *max_size* are ignored.

    Small-cell caveat: in a periodic cell only a few repeat units wide,
    cycles wrapping the torus can be as short as genuine faces (a 3-unit
    zig-zag circumference is 6 bonds) and are counted too — use a cell at
    least 4 units wide for a face-pure census.
    """
    if max_size < 3:
        raise GeometryError("max_size must be >= 3")
    g = bond_graph(atoms, r_cut)
    seen: dict[frozenset, int] = {}
    for u, v in g.edges():
        g.remove_edge(u, v)
        try:
            paths = list(nx.all_shortest_paths(g, u, v))
        except nx.NetworkXNoPath:
            paths = []
        g.add_edge(u, v)
        for path in paths:
            size = len(path)
            if 3 <= size <= max_size:
                seen.setdefault(frozenset(path), size)
    counts: dict[int, int] = {}
    for size in seen.values():
        counts[size] = counts.get(size, 0) + 1
    return dict(sorted(counts.items()))


def count_polygons(atoms, r_cut: float) -> tuple[int, int, int]:
    """(pentagons, hexagons, heptagons) — the 5/6/7 census of sp² carbon."""
    stats = ring_statistics(atoms, r_cut, max_size=8)
    return stats.get(5, 0), stats.get(6, 0), stats.get(7, 0)


def connected_fragments(atoms, r_cut: float) -> list[np.ndarray]:
    """Connected components of the bond graph, largest first."""
    g = bond_graph(atoms, r_cut)
    comps = sorted(nx.connected_components(g), key=len, reverse=True)
    return [np.array(sorted(c), dtype=int) for c in comps]

"""Structural and dynamical analysis: RDF, rings, MSD, VACF, EOS, bands."""

from repro.analysis.rdf import radial_distribution
from repro.analysis.adf import angle_distribution
from repro.analysis.coordination import bond_statistics, coordination_numbers
from repro.analysis.rings import ring_statistics, bond_graph
from repro.analysis.msd import mean_squared_displacement, diffusion_coefficient
from repro.analysis.vacf import velocity_autocorrelation, phonon_dos
from repro.analysis.eos import birch_murnaghan_fit, murnaghan_fit, EOSFit
from repro.analysis.strain_sweep import (
    StrainPoint,
    StrainSweepResult,
    strain_sweep,
    strain_tensors,
    sweep_amplitudes,
)
from repro.analysis.timeseries import block_average, running_mean
from repro.analysis.phonons import (
    acoustic_sum_rule_violation,
    dynamical_matrix,
    gamma_frequencies,
)
from repro.analysis.elastic import born_stability_cubic, cubic_elastic_constants

__all__ = [
    "radial_distribution",
    "angle_distribution",
    "coordination_numbers",
    "bond_statistics",
    "ring_statistics",
    "bond_graph",
    "mean_squared_displacement",
    "diffusion_coefficient",
    "velocity_autocorrelation",
    "phonon_dos",
    "birch_murnaghan_fit",
    "murnaghan_fit",
    "EOSFit",
    "StrainPoint",
    "StrainSweepResult",
    "strain_sweep",
    "strain_tensors",
    "sweep_amplitudes",
    "block_average",
    "running_mean",
    "dynamical_matrix",
    "gamma_frequencies",
    "acoustic_sum_rule_violation",
    "cubic_elastic_constants",
    "born_stability_cubic",
]

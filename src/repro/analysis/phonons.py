"""Lattice dynamics: finite-difference dynamical matrix and Γ phonons.

The direct (frozen-phonon) route to vibrational frequencies: displace
every atom along every Cartesian direction, build the mass-weighted
Hessian from the force differences, diagonalise.  Complements the VACF
route in :mod:`repro.analysis.vacf` — the two spectra are compared in the
F9 benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.units import FORCE_TO_ACC


def dynamical_matrix(atoms, calc, displacement: float = 0.01,
                     symmetrize: bool = True) -> np.ndarray:
    """Mass-weighted Hessian D (3N × 3N) at Γ by central differences.

    ``D[3i+a, 3j+b] = −∂F_{jb}/∂r_{ia} / √(m_i m_j)`` in eV/Å²/amu.
    Costs 6N force evaluations.
    """
    if displacement <= 0:
        raise GeometryError("displacement must be > 0")
    n = len(atoms)
    d = np.zeros((3 * n, 3 * n))
    inv_sqrt_m = 1.0 / np.sqrt(atoms.masses)
    for i in range(n):
        for a in range(3):
            plus = atoms.copy()
            plus.positions[i, a] += displacement
            f_plus = calc.compute(plus, forces=True)["forces"]
            minus = atoms.copy()
            minus.positions[i, a] -= displacement
            f_minus = calc.compute(minus, forces=True)["forces"]
            dfdx = (f_plus - f_minus) / (2.0 * displacement)   # (N, 3)
            row = -(dfdx * inv_sqrt_m[:, None]).reshape(-1) * inv_sqrt_m[i]
            d[3 * i + a, :] = row
    if symmetrize:
        d = 0.5 * (d + d.T)
    return d


def gamma_frequencies(atoms, calc, displacement: float = 0.01
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Γ-point phonon frequencies (THz) and mass-weighted eigenvectors.

    Negative eigenvalues (imaginary modes) are returned as negative
    frequencies, the standard convention for instability reporting.
    Internal-unit bookkeeping: ``ω² = λ · FORCE_TO_ACC`` gives ω in
    rad/fs; ``ν[THz] = ω/(2π) × 10³``.
    """
    d = dynamical_matrix(atoms, calc, displacement=displacement)
    evals, evecs = np.linalg.eigh(d)
    omega2 = evals * FORCE_TO_ACC                 # rad²/fs²
    nu = np.sign(omega2) * np.sqrt(np.abs(omega2)) / (2.0 * np.pi) * 1.0e3
    return nu, evecs


def acoustic_sum_rule_violation(d: np.ndarray, masses: np.ndarray) -> float:
    """Max |Σ_j √(m_j) D[ia, jb]·?| — translational-invariance residual.

    For an exact Hessian, rigid translations are null modes:
    ``Σ_j D[3i+a, 3j+b] √(m_j) = 0`` for all (i, a, b).  Returns the
    worst-case violation (eV/Å²/√amu) — a force-consistency diagnostic.
    """
    n = len(masses)
    sqrt_m = np.sqrt(masses)
    worst = 0.0
    for b in range(3):
        # translation vector along b in mass-weighted coordinates
        t = np.zeros(3 * n)
        t[b::3] = sqrt_m
        resid = np.abs(d @ t).max()
        worst = max(worst, float(resid))
    return worst


def phonon_dos_from_frequencies(frequencies: np.ndarray, nbins: int = 60,
                                f_max: float | None = None
                                ) -> tuple[np.ndarray, np.ndarray]:
    """Histogram DOS from a Γ (or supercell-folded) frequency list."""
    nu = np.asarray(frequencies, dtype=float)
    nu = nu[nu > 0.1]             # drop acoustic zeros / numerical noise
    if len(nu) == 0:
        raise GeometryError("no positive frequencies")
    if f_max is None:
        f_max = float(nu.max()) * 1.05
    hist, edges = np.histogram(nu, bins=nbins, range=(0.0, f_max))
    centers = 0.5 * (edges[1:] + edges[:-1])
    area = np.trapezoid(hist.astype(float), centers)
    dos = hist / area if area > 0 else hist.astype(float)
    return centers, dos

"""Mean-squared displacement and diffusion coefficients."""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def mean_squared_displacement(positions: np.ndarray,
                              origins: int = 1) -> np.ndarray:
    """MSD(τ) from a (T, N, 3) *unwrapped* position stack.

    Parameters
    ----------
    origins :
        Number of evenly spaced time origins averaged over (window
        averaging improves statistics at small τ).

    Returns
    -------
    (T,) array; entry τ is ⟨|r(t₀+τ) − r(t₀)|²⟩ over atoms and origins.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 3 or pos.shape[2] != 3:
        raise GeometryError(f"positions must be (T, N, 3), got {pos.shape}")
    nt = pos.shape[0]
    if origins < 1:
        raise GeometryError("origins must be >= 1")
    origins = min(origins, nt)
    starts = np.linspace(0, nt - 1, origins).astype(int)
    msd = np.zeros(nt)
    counts = np.zeros(nt)
    for t0 in starts:
        span = nt - t0
        disp = pos[t0:] - pos[t0]
        msd[:span] += np.mean(np.sum(disp * disp, axis=2), axis=1)
        counts[:span] += 1
    return msd / np.maximum(counts, 1)


def diffusion_coefficient(times_fs: np.ndarray, msd: np.ndarray,
                          fit_fraction: tuple[float, float] = (0.5, 1.0)
                          ) -> float:
    """Einstein diffusion coefficient D = slope/6 from the linear tail.

    Returns D in Å²/fs (multiply by 1e-1 for cm²/s... specifically
    1 Å²/fs = 1e-16 cm² / 1e-15 s = 0.1 cm²/s).
    """
    t = np.asarray(times_fs, dtype=float)
    m = np.asarray(msd, dtype=float)
    if t.shape != m.shape:
        raise GeometryError("times and msd must have equal length")
    lo = int(len(t) * fit_fraction[0])
    hi = int(len(t) * fit_fraction[1])
    if hi - lo < 2:
        raise GeometryError("fit window too small")
    slope = np.polyfit(t[lo:hi], m[lo:hi], 1)[0]
    return float(slope / 6.0)

"""Velocity autocorrelation function and phonon density of states.

The VACF Fourier transform is the classic cheap phonon DOS of MD codes —
crystalline silicon shows its acoustic/optical structure with a cutoff
near 16 THz, a standard TB validation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def velocity_autocorrelation(velocities: np.ndarray,
                             max_lag: int | None = None) -> np.ndarray:
    """Normalised VACF ⟨v(0)·v(τ)⟩/⟨v²⟩ from a (T, N, 3) velocity stack.

    Uses FFT-based correlation over all time origins.
    """
    v = np.asarray(velocities, dtype=float)
    if v.ndim != 3 or v.shape[2] != 3:
        raise GeometryError(f"velocities must be (T, N, 3), got {v.shape}")
    nt = v.shape[0]
    if max_lag is None:
        max_lag = nt // 2
    max_lag = min(max_lag, nt - 1)

    # correlate each scalar component with zero-padded FFT
    nfft = 1
    while nfft < 2 * nt:
        nfft *= 2
    flat = v.reshape(nt, -1)
    spec = np.fft.rfft(flat, n=nfft, axis=0)
    corr = np.fft.irfft(spec * np.conj(spec), n=nfft, axis=0)[:max_lag + 1]
    # unbiased normalisation by the overlap count
    counts = (nt - np.arange(max_lag + 1)).astype(float)
    corr = corr.sum(axis=1) / counts
    if corr[0] <= 0:
        raise GeometryError("zero kinetic energy; VACF undefined")
    return corr / corr[0]


def phonon_dos(velocities: np.ndarray, dt_fs: float,
               max_lag: int | None = None,
               window: str = "hann") -> tuple[np.ndarray, np.ndarray]:
    """Phonon DOS as the cosine transform of the VACF.

    Returns ``(frequencies_THz, dos)`` with the DOS normalised to unit
    integral.
    """
    if dt_fs <= 0:
        raise GeometryError("dt_fs must be > 0")
    vacf = velocity_autocorrelation(velocities, max_lag=max_lag)
    n = len(vacf)
    if window == "hann":
        w = np.hanning(2 * n)[n:]
    elif window == "none":
        w = np.ones(n)
    else:
        raise GeometryError(f"unknown window {window!r}")
    spec = np.abs(np.fft.rfft(vacf * w, n=4 * n))
    freq_per_fs = np.fft.rfftfreq(4 * n, d=dt_fs)   # cycles/fs
    freq_thz = freq_per_fs * 1.0e3                  # 1 cycle/fs = 1000 THz
    area = np.trapezoid(spec, freq_thz)
    if area > 0:
        spec = spec / area
    return freq_thz, spec


def dos_cutoff(freq_thz: np.ndarray, dos: np.ndarray,
               threshold: float = 0.02) -> float:
    """Highest frequency with DOS above *threshold* × max (band top)."""
    dos = np.asarray(dos)
    mask = dos > threshold * dos.max()
    if not mask.any():
        return 0.0
    return float(np.asarray(freq_thz)[mask].max())

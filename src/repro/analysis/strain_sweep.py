"""Batch strain sweeps and equation-of-state fits with one warm calculator.

The F6-style E(V) validation curves — the energy ladder the Goedecker &
Colombo silicon results rest on — used to be produced by ad-hoc loops
that built a **fresh calculator at every strain point**, paying the full
cold cost (neighbour build, Hamiltonian pattern, localization regions,
Lanczos window, μ bisection) dozens of times for geometries that differ
by a fraction of a percent.  :func:`strain_sweep` walks the strain path
with **one persistent calculator** instead, exactly the way the MD fast
path reuses state across steps:

* strain points are visited in sorted order, so consecutive geometries
  are nearest neighbours on the path and the warm state transfers;
* a cell change is *not* a full reset under the shared
  :class:`repro.state.CalculatorState` contract — the Verlet lists remap
  their image shifts, the sparse-Hamiltonian pattern is revalidated and
  value-rewritten, the cached Chebyshev windows are kept under their
  a-posteriori moment guards, and μ warm-starts from the previous point;
* with ``kgrid_reduce="symmetry"`` the *fractional* irreducible wedge of
  a symmetric crystal is invariant under any homogeneous strain that
  preserves the point group, and re-detection is byte-cached — the per-k
  caches survive the whole sweep.

The sweep feeds the existing :mod:`repro.analysis.eos` fits
(Birch–Murnaghan / Murnaghan) and is exposed operationally as the
``repro.cli sweep`` subcommand and the batch service's ``sweep`` op.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import GeometryError
from repro.geometry.transform import strain as apply_strain
from repro.analysis.eos import EOSFit, birch_murnaghan_fit, murnaghan_fit
from repro.units import EV_PER_A3_TO_GPA
from repro.utils.timing import tick

#: strain paths the driver knows how to build itself
SWEEP_MODES = ("volumetric", "uniaxial", "shear", "custom")


@dataclass(frozen=True)
class StrainPoint:
    """One evaluated point of a strain sweep (per-atom energetics)."""

    amplitude: float
    strain: np.ndarray                 # the applied 3×3 ε
    volume: float                      # Å³ / atom
    energy: float                      # eV / atom (minus energy_ref)
    free_energy: float                 # eV / atom (minus energy_ref)
    pressure_gpa: float | None = None
    max_force: float | None = None     # eV/Å
    solve_mode: str | None = None      # calculator fast-path diagnostics
    seconds: float = 0.0               # wall time of this point's compute

    def as_dict(self) -> dict:
        return {
            "amplitude": self.amplitude,
            "strain": np.asarray(self.strain).tolist(),
            "volume": self.volume,
            "energy": self.energy,
            "free_energy": self.free_energy,
            "pressure_gpa": self.pressure_gpa,
            "max_force": self.max_force,
            "solve_mode": self.solve_mode,
            "seconds": self.seconds,
        }


@dataclass
class StrainSweepResult:
    """Everything one sweep produced: the E(ε) points and the EOS fit."""

    mode: str
    natoms: int
    points: list[StrainPoint]
    eos: EOSFit | None
    energy_ref: float
    calc_report: dict | None = None

    @property
    def volumes(self) -> np.ndarray:
        """Per-atom volumes (Å³), in sweep order."""
        return np.array([p.volume for p in self.points])

    @property
    def energies(self) -> np.ndarray:
        """Per-atom energies (eV, minus ``energy_ref``), in sweep order."""
        return np.array([p.energy for p in self.points])

    def as_dict(self) -> dict:
        """Plain-JSON payload (CLI ``--json`` / service ``sweep`` op)."""
        eos = None
        if self.eos is not None:
            eos = {"form": self.eos.form, "e0": self.eos.e0,
                   "v0": self.eos.v0, "b0": self.eos.b0,
                   "b0_gpa": self.eos.b0 * EV_PER_A3_TO_GPA,
                   "b0_prime": self.eos.b0_prime,
                   "residual": self.eos.residual}
        return {"mode": self.mode, "natoms": self.natoms,
                "energy_ref": self.energy_ref,
                "points": [p.as_dict() for p in self.points],
                "eos": eos}


def sweep_amplitudes(amplitude: float = 0.04, npoints: int = 9
                     ) -> np.ndarray:
    """The standard symmetric strain path: *npoints* across ±*amplitude*.

    The one definition behind the driver's default, the CLI flags and
    the service ``sweep`` op — validated here so every surface rejects
    a bad request identically (and instantly)."""
    amplitude = float(amplitude)
    npoints = int(npoints)
    if npoints < 1:
        raise GeometryError(f"npoints must be >= 1, got {npoints}")
    if not 0.0 < amplitude < 1.0:
        raise GeometryError(
            f"amplitude must be in (0, 1) (linear strain), got {amplitude}")
    return np.linspace(-amplitude, amplitude, npoints)


def strain_tensors(mode: str, amplitudes, axis: int = 2
                   ) -> list[np.ndarray]:
    """Build the 3×3 strain tensors of a named path.

    ``volumetric`` applies ε·1 (isotropic — lengths scale by 1+ε, the
    volume by (1+ε)³), ``uniaxial`` ε on one axis, ``shear`` a symmetric
    ε on the (axis+1, axis+2) off-diagonal pair.
    """
    if mode not in ("volumetric", "uniaxial", "shear"):
        raise GeometryError(
            f"unknown strain mode {mode!r}; choose from "
            f"('volumetric', 'uniaxial', 'shear') or pass tensors=")
    if axis not in (0, 1, 2):
        raise GeometryError(f"axis must be 0, 1 or 2, got {axis}")
    out = []
    for a in np.asarray(amplitudes, dtype=float):
        eps = np.zeros((3, 3))
        if mode == "volumetric":
            eps[np.diag_indices(3)] = a
        elif mode == "uniaxial":
            eps[axis, axis] = a
        else:
            i, j = (axis + 1) % 3, (axis + 2) % 3
            eps[i, j] = eps[j, i] = a
        out.append(eps)
    return out


def strain_sweep(atoms, calc, amplitudes=None, *, mode: str = "volumetric",
                 axis: int = 2, tensors=None, forces: bool = False,
                 fit: str | None = "birch", energy_ref: float = 0.0,
                 traj_writer=None) -> StrainSweepResult:
    """Evaluate E(ε) along a strain path with one persistent calculator.

    Parameters
    ----------
    atoms :
        The unstrained reference structure (never mutated — every point
        evaluates a strained copy).
    calc :
        Any calculator with the shared ``compute(atoms, forces=...)``
        contract.  Reuse-capable calculators (``linscale`` with
        ``reuse=True``, the default) keep their neighbour/pattern/
        window/μ state warm from point to point; the measured speedup is
        asserted in ``benchmarks/bench_a11_symmetry_sweep.py``.
    amplitudes :
        Strain amplitudes ε (defaults to 9 points in ±4 %).  Visited in
        ascending order regardless of the order given, so consecutive
        evaluations are nearest neighbours on the path.
    mode, axis :
        Path construction (see :func:`strain_tensors`), or
        ``mode="custom"`` with explicit *tensors*.
    tensors :
        Explicit list of 3×3 strain tensors (implies ``mode="custom"``;
        paired with *amplitudes* as labels when given, else indexed).
    forces :
        Also compute forces/pressure per point (energy-only solves are
        cheaper — the O(N) engine skips the density-matrix pass).
    fit :
        ``"birch"`` (default), ``"murnaghan"``, or ``None``.  The fit
        needs ≥ 5 points whose volumes vary *monotonically* along the
        path — pure shear changes the volume only at O(ε²) and folds
        E(V) two-to-one, so ``mode="shear"`` (and any custom path that
        folds) must pass ``fit=None``.  All fit preconditions are
        checked **before** the sweep runs, so a bad request fails
        instantly instead of after the full E(ε) scan.
    energy_ref :
        Per-atom reference subtracted from the stored energies (e.g. the
        free-atom reference that turns E into cohesive energy).
    traj_writer :
        Optional :class:`~repro.trajio.writer.TrajectoryWriter` (or any
        object with the same ``write``) receiving each strained geometry
        as a frame (step = visit index, ``epot`` = the *total* energy of
        the point).  The caller owns the writer's lifecycle.

    Returns
    -------
    :class:`StrainSweepResult` — points in ascending-amplitude order,
    the EOS fit (per-atom V₀/E₀/B₀), and the calculator's state-reuse
    report when it exposes one.
    """
    if tensors is not None:
        mode = "custom"
        tensors = [np.asarray(t, dtype=float) for t in tensors]
        for t in tensors:
            if t.shape != (3, 3):
                raise GeometryError("custom strain tensors must be 3x3")
        if amplitudes is None:
            amplitudes = np.arange(len(tensors), dtype=float)
        amplitudes = np.asarray(amplitudes, dtype=float)
        if len(amplitudes) != len(tensors):
            raise GeometryError(
                f"{len(tensors)} tensors but {len(amplitudes)} amplitudes")
        order = np.arange(len(tensors))        # caller-chosen path order
    else:
        if mode == "custom":
            raise GeometryError("mode='custom' needs tensors=")
        if amplitudes is None:
            amplitudes = sweep_amplitudes()
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.ndim != 1 or len(amplitudes) == 0:
            raise GeometryError("amplitudes must be a non-empty 1-D array")
        if np.any(amplitudes <= -1.0):
            raise GeometryError("strain amplitudes must be > -1")
        order = np.argsort(amplitudes)         # warm state walks the path
        tensors = strain_tensors(mode, amplitudes, axis=axis)

    # -- fit preconditions, checked BEFORE any electronic work ------------
    if fit is not None:
        if fit not in ("birch", "murnaghan"):
            raise GeometryError(
                f"unknown EOS form {fit!r}; choose 'birch', 'murnaghan' "
                f"or None")
        if mode == "shear":
            raise GeometryError(
                "an E(V) fit on a shear path is meaningless (volume "
                "changes only at O(ε²), folding E(V) two-to-one); "
                "pass fit=None")
        if len(tensors) < 5:
            raise GeometryError(
                f"an EOS fit needs >= 5 strain points, got {len(tensors)}")
        vols = np.array([np.linalg.det(np.eye(3) + tensors[i])
                         for i in order])
        if np.ptp(vols) < 1e-12 or not (np.all(np.diff(vols) > 0)
                                        or np.all(np.diff(vols) < 0)):
            raise GeometryError(
                "an EOS fit needs volumes varying monotonically along "
                "the path (E(V) must be single-valued); pass fit=None "
                "for constant-volume or folded custom paths")

    n = len(atoms)
    points: list[StrainPoint] = []
    for i in order:
        strained = apply_strain(atoms, tensors[i])
        t0 = tick()
        with obs.span("sweep.point") as sp:
            res = calc.compute(strained, forces=forces)
            fast = res.get("fastpath") or {}
            sp.set(amplitude=float(amplitudes[i]), mode=fast.get("mode"))
        dt = tick() - t0
        obs.observe("sweep.point_s", dt)
        obs.counter_inc("sweep.points")
        if traj_writer is not None:
            traj_writer.write(strained, step=len(points),
                              epot=float(res["energy"]))
        points.append(StrainPoint(
            amplitude=float(amplitudes[i]),
            strain=tensors[i],
            volume=strained.cell.volume / n,
            energy=res["energy"] / n - energy_ref,
            free_energy=res.get("free_energy", res["energy"]) / n
                        - energy_ref,
            pressure_gpa=res.get("pressure_gpa"),
            max_force=(float(np.abs(res["forces"]).max())
                       if "forces" in res else None),
            solve_mode=fast.get("mode"),
            seconds=dt,
        ))

    eos = None
    if fit is not None:
        fitter = birch_murnaghan_fit if fit == "birch" else murnaghan_fit
        eos = fitter(np.array([p.volume for p in points]),
                     np.array([p.energy for p in points]))

    report = None
    if hasattr(calc, "state_report"):
        report = calc.state_report()
    return StrainSweepResult(mode=mode, natoms=n, points=points, eos=eos,
                             energy_ref=float(energy_ref),
                             calc_report=report)

"""Radial distribution function g(r).

Histogram of pair distances normalised by the ideal-gas shell count — the
standard liquid-structure diagnostic (F7 reproduces the liquid-Si g(r)
with its ≈2.45 Å first peak and >4 coordination).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.neighbors import neighbor_list


def radial_distribution(frames, r_max: float, nbins: int = 100,
                        cell=None) -> tuple[np.ndarray, np.ndarray]:
    """g(r) averaged over *frames*.

    Parameters
    ----------
    frames :
        One Atoms object or an iterable of them (e.g. trajectory
        snapshots).  All frames must share the cell and atom count.
    r_max :
        Histogram range (Å).  For periodic systems must not exceed what
        the image enumeration supports (any value works; cost grows).
    nbins :
        Number of radial bins.

    Returns
    -------
    ``(r_centers, g)`` arrays of length *nbins*.
    """
    if r_max <= 0:
        raise GeometryError("r_max must be > 0")
    if hasattr(frames, "positions") and not isinstance(frames, (list, tuple)):
        frames = [frames]
    frames = list(frames)
    if not frames:
        raise GeometryError("no frames given")

    edges = np.linspace(0.0, r_max, nbins + 1)
    hist = np.zeros(nbins)
    n = len(frames[0])
    vol = None
    for at in frames:
        if len(at) != n:
            raise GeometryError("all frames must have the same atom count")
        nl = neighbor_list(at, r_max, method="brute")
        # half list: each pair once; count twice for the per-atom normalisation
        h, _ = np.histogram(nl.distances, bins=edges)
        hist += 2.0 * h
        if at.cell.fully_periodic:
            vol = at.cell.volume
    hist /= len(frames)

    centers = 0.5 * (edges[1:] + edges[:-1])
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    if vol is not None:
        density = n / vol
    else:
        # isolated systems: normalise by the mean density inside r_max of
        # the bounding sphere — g(r) is then qualitative (documented).
        density = n / (4.0 / 3.0 * np.pi * r_max**3)
    ideal = density * shell_vol * n
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(ideal > 0, hist / ideal, 0.0)
    return centers, g


def first_peak(r: np.ndarray, g: np.ndarray,
               r_window: tuple[float, float] | None = None) -> float:
    """Position of the first maximum of g(r) (optionally within a window)."""
    r = np.asarray(r)
    g = np.asarray(g)
    mask = np.ones_like(r, dtype=bool)
    if r_window is not None:
        mask = (r >= r_window[0]) & (r <= r_window[1])
    if not mask.any():
        raise GeometryError("empty r window")
    idx = np.argmax(g[mask])
    return float(r[mask][idx])


def coordination_from_rdf(r: np.ndarray, g: np.ndarray, density: float,
                          r_min: float) -> float:
    """Running coordination number ``4πρ ∫₀^{r_min} g(r) r² dr``."""
    r = np.asarray(r)
    g = np.asarray(g)
    mask = r <= r_min
    integrand = g[mask] * r[mask] ** 2
    return float(4.0 * np.pi * density * np.trapezoid(integrand, r[mask]))

"""Equation-of-state fits: Murnaghan and Birch–Murnaghan.

The F6 benchmark fits cohesive-energy-vs-volume curves per silicon
polytype and reports (V₀, E₀, B₀) — the standard TB validation table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from repro.errors import ConvergenceError, GeometryError
from repro.units import EV_PER_A3_TO_GPA


@dataclass(frozen=True)
class EOSFit:
    """Fitted equation-of-state parameters (per-atom quantities)."""

    e0: float       # minimum energy (eV/atom)
    v0: float       # equilibrium volume (Å³/atom)
    b0: float       # bulk modulus (eV/Å³)
    b0_prime: float
    residual: float
    form: str

    @property
    def b0_gpa(self) -> float:
        return self.b0 * EV_PER_A3_TO_GPA

    def energy(self, v) -> np.ndarray:
        """Evaluate the fitted E(V)."""
        v = np.asarray(v, dtype=float)
        if self.form == "murnaghan":
            return _murnaghan(v, self.e0, self.v0, self.b0, self.b0_prime)
        return _birch(v, self.e0, self.v0, self.b0, self.b0_prime)


def _murnaghan(v, e0, v0, b0, bp):
    return (e0 + b0 * v / bp * ((v0 / v) ** bp / (bp - 1.0) + 1.0)
            - b0 * v0 / (bp - 1.0))


def _birch(v, e0, v0, b0, bp):
    eta = (v0 / v) ** (2.0 / 3.0)
    return (e0 + 9.0 * b0 * v0 / 16.0
            * ((eta - 1.0) ** 3 * bp + (eta - 1.0) ** 2 * (6.0 - 4.0 * eta)))


def _fit(volumes, energies, fn, form) -> EOSFit:
    v = np.asarray(volumes, dtype=float)
    e = np.asarray(energies, dtype=float)
    if v.shape != e.shape or v.ndim != 1:
        raise GeometryError("volumes and energies must be equal-length 1-D")
    if len(v) < 5:
        raise GeometryError("need at least 5 (V, E) points for an EOS fit")
    imin = int(np.argmin(e))
    # parabolic seed
    p = np.polyfit(v, e, 2)
    if p[0] <= 0:
        guess_b0 = 0.5
        guess_v0 = v[imin]
    else:
        guess_v0 = -p[1] / (2 * p[0])
        guess_b0 = 2.0 * p[0] * guess_v0
    guess = [e[imin], guess_v0, abs(guess_b0), 4.0]
    try:
        popt, _ = curve_fit(fn, v, e, p0=guess, maxfev=20000)
    except RuntimeError as exc:
        raise ConvergenceError(f"EOS fit failed: {exc}") from exc
    resid = float(np.sqrt(np.mean((fn(v, *popt) - e) ** 2)))
    e0, v0, b0, bp = (float(x) for x in popt)
    if v0 <= 0 or b0 <= 0:
        raise ConvergenceError(
            f"EOS fit produced unphysical parameters (V0={v0}, B0={b0}); "
            "check the sampled volume range brackets the minimum"
        )
    return EOSFit(e0=e0, v0=v0, b0=b0, b0_prime=bp, residual=resid, form=form)


def murnaghan_fit(volumes, energies) -> EOSFit:
    """Fit the Murnaghan EOS; per-atom inputs give per-atom parameters."""
    return _fit(volumes, energies, _murnaghan, "murnaghan")


def birch_murnaghan_fit(volumes, energies) -> EOSFit:
    """Fit the 3rd-order Birch–Murnaghan EOS."""
    return _fit(volumes, energies, _birch, "birch")

"""Cubic elastic constants from finite-strain energy differences.

C11, C12 and C44 of a cubic crystal via quadratic fits of E(δ) for three
canonical deformations:

* uniaxial ε_xx = δ                      → curvature V·C11
* orthorhombic ε_xx = δ, ε_yy = −δ       → curvature V·(C11 − C12)·2...
  precisely E/V = (C11 − C12) δ² for the traceless orthorhombic strain
* monoclinic ε_xy = ε_yx = δ/2           → E/V = ½ C44 δ² (with internal
  relaxation for diamond-structure crystals, which have a free internal
  coordinate under shear)

The bulk modulus identity B = (C11 + 2·C12)/3 cross-checks the EOS fit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.transform import strain
from repro.units import EV_PER_A3_TO_GPA


def _energy_of_strain(atoms, calc_factory, eps_tensor, relax_internal: bool,
                      fmax: float):
    deformed = strain(atoms, eps_tensor)
    calc = calc_factory()
    if relax_internal:
        from repro.relax import conjugate_gradient

        conjugate_gradient(deformed, calc, fmax=fmax, max_steps=300)
    return calc.get_potential_energy(deformed)


def _curvature(atoms, calc_factory, tensor_of_delta, deltas,
               relax_internal=False, fmax=0.005) -> float:
    """d²E/dδ² (eV) from a quadratic fit over ±deltas."""
    ds = np.concatenate([-np.asarray(deltas)[::-1], [0.0], np.asarray(deltas)])
    es = [
        _energy_of_strain(atoms, calc_factory, tensor_of_delta(d),
                          relax_internal, fmax)
        for d in ds
    ]
    coeffs = np.polyfit(ds, es, 2)
    return 2.0 * float(coeffs[0])


def cubic_elastic_constants(atoms, calc_factory, delta: float = 0.01,
                            n_points: int = 2,
                            relax_internal_c44: bool = True) -> dict:
    """(C11, C12, C44, B) of a cubic crystal in eV/Å³ and GPa.

    Parameters
    ----------
    atoms :
        The relaxed cubic cell (forces ≈ 0; this is asserted).
    calc_factory :
        Zero-argument callable returning a *fresh* calculator (cache
        isolation between strained evaluations).
    delta :
        Strain amplitude; points at ±δ, ±δ/2 (n_points=2) are fitted.
    relax_internal_c44 :
        Relax internal coordinates under the monoclinic shear (required
        for diamond-structure crystals — skipping it overestimates C44
        by the Kleinman internal-strain contribution).
    """
    if not atoms.cell.fully_periodic:
        raise GeometryError("elastic constants need a fully periodic cell")
    f0 = calc_factory().get_forces(atoms)
    if np.abs(f0).max() > 0.05:
        raise GeometryError(
            f"reference structure not relaxed (max |F| = {np.abs(f0).max():.3f})"
        )
    vol = atoms.cell.volume
    deltas = [delta * (k + 1) / n_points for k in range(n_points)]

    def uniaxial(d):
        e = np.zeros((3, 3)); e[0, 0] = d
        return e

    def orthorhombic(d):
        e = np.zeros((3, 3)); e[0, 0] = d; e[1, 1] = -d
        return e

    def monoclinic(d):
        e = np.zeros((3, 3)); e[0, 1] = d / 2; e[1, 0] = d / 2
        return e

    # E = ½ V C11 δ²  →  d²E/dδ² = V C11
    c11 = _curvature(atoms, calc_factory, uniaxial, deltas) / vol
    # traceless orthorhombic: E = V (C11 − C12) δ²  →  d²E/dδ² = 2V(C11−C12)
    c11_m_c12 = _curvature(atoms, calc_factory, orthorhombic, deltas) \
        / (2.0 * vol)
    c12 = c11 - c11_m_c12
    # engineering shear γ = δ: E = ½ V C44 δ²
    c44 = _curvature(atoms, calc_factory, monoclinic, deltas,
                     relax_internal=relax_internal_c44) / vol
    c44_unrelaxed = _curvature(atoms, calc_factory, monoclinic, deltas,
                               relax_internal=False) / vol
    bulk = (c11 + 2.0 * c12) / 3.0
    return {
        "c11": c11, "c12": c12, "c44": c44,
        "c44_unrelaxed": c44_unrelaxed,
        "bulk_modulus": bulk,
        "c11_gpa": c11 * EV_PER_A3_TO_GPA,
        "c12_gpa": c12 * EV_PER_A3_TO_GPA,
        "c44_gpa": c44 * EV_PER_A3_TO_GPA,
        "c44_unrelaxed_gpa": c44_unrelaxed * EV_PER_A3_TO_GPA,
        "bulk_modulus_gpa": bulk * EV_PER_A3_TO_GPA,
    }


def born_stability_cubic(c11: float, c12: float, c44: float) -> bool:
    """Born mechanical-stability criteria for cubic crystals."""
    return (c11 - c12 > 0) and (c11 + 2 * c12 > 0) and (c44 > 0)

"""Bond-angle distribution function.

The tetrahedral 109.47° peak of crystalline/amorphous silicon vs the
broad liquid distribution is a standard structural fingerprint alongside
g(r).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.neighbors import neighbor_list


def angle_distribution(frames, r_cut: float, nbins: int = 90
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Distribution of j–i–k angles for bonded triplets within *r_cut*.

    Returns ``(angle_centers_deg, probability_density)`` normalised to
    unit integral over [0°, 180°].
    """
    if r_cut <= 0:
        raise GeometryError("r_cut must be > 0")
    if hasattr(frames, "positions") and not isinstance(frames, (list, tuple)):
        frames = [frames]
    frames = list(frames)
    if not frames:
        raise GeometryError("no frames given")

    edges = np.linspace(0.0, 180.0, nbins + 1)
    hist = np.zeros(nbins)
    for at in frames:
        nl = neighbor_list(at, r_cut, method="brute")
        fi, fj, fvec, _ = nl.full()
        order = np.argsort(fi, kind="stable")
        fi, fj, fvec = fi[order], fj[order], fvec[order]
        # group bonds by central atom i
        starts = np.searchsorted(fi, np.arange(len(at)))
        ends = np.searchsorted(fi, np.arange(len(at)) + 1)
        for s, e in zip(starts, ends):
            if e - s < 2:
                continue
            v = fvec[s:e]
            norms = np.linalg.norm(v, axis=1)
            unit = v / norms[:, None]
            cosm = unit @ unit.T
            iu, ju = np.triu_indices(len(v), k=1)
            ang = np.degrees(np.arccos(np.clip(cosm[iu, ju], -1.0, 1.0)))
            h, _ = np.histogram(ang, bins=edges)
            hist += h
    centers = 0.5 * (edges[1:] + edges[:-1])
    total = hist.sum()
    if total > 0:
        width = edges[1] - edges[0]
        hist = hist / (total * width)
    return centers, hist


def mean_angle(frames, r_cut: float) -> float:
    """Mean bonded angle in degrees (109.47 for perfect tetrahedra)."""
    centers, dens = angle_distribution(frames, r_cut, nbins=360)
    total = dens.sum()
    if total == 0:
        raise GeometryError("no bonded triplets found within r_cut")
    return float(np.sum(centers * dens) / total)

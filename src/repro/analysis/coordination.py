"""Coordination numbers and bond statistics."""

from __future__ import annotations

import numpy as np

from repro.neighbors import neighbor_list


def coordination_numbers(atoms, r_cut: float) -> np.ndarray:
    """Per-atom neighbour count within *r_cut* (Å)."""
    return neighbor_list(atoms, r_cut, method="brute").coordination()


def bond_statistics(atoms, r_cut: float) -> dict:
    """Summary of the bond network within *r_cut*.

    Returns mean/min/max coordination, bond-length statistics, and the
    histogram of coordination numbers — the diagnostics the nanotube /
    liquid workloads report (e.g. "all atoms three-coordinated sp²").
    """
    nl = neighbor_list(atoms, r_cut, method="brute")
    coord = nl.coordination()
    uniq, counts = (np.unique(coord, return_counts=True)
                    if len(coord) else (np.array([]), np.array([])))
    return {
        "n_bonds": nl.n_pairs,
        "mean_coordination": float(coord.mean()) if len(coord) else 0.0,
        "min_coordination": int(coord.min()) if len(coord) else 0,
        "max_coordination": int(coord.max()) if len(coord) else 0,
        "coordination_histogram": {int(u): int(c) for u, c in zip(uniq, counts)},
        "mean_bond_length": float(nl.distances.mean()) if nl.n_pairs else 0.0,
        "min_bond_length": float(nl.distances.min()) if nl.n_pairs else 0.0,
        "max_bond_length": float(nl.distances.max()) if nl.n_pairs else 0.0,
    }


def undercoordinated_atoms(atoms, r_cut: float, target: int) -> np.ndarray:
    """Indices of atoms with fewer than *target* neighbours (dangling
    bonds — e.g. open nanotube edges)."""
    coord = coordination_numbers(atoms, r_cut)
    return np.flatnonzero(coord < target)

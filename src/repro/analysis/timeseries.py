"""Time-series statistics for MD observables."""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError


def running_mean(x, window: int) -> np.ndarray:
    """Centered-ish running mean with a leading ramp (same length as x)."""
    x = np.asarray(x, dtype=float)
    if window < 1:
        raise GeometryError("window must be >= 1")
    window = min(window, len(x))
    c = np.cumsum(np.concatenate([[0.0], x]))
    out = np.empty_like(x)
    for i in range(len(x)):
        lo = max(0, i - window + 1)
        out[i] = (c[i + 1] - c[lo]) / (i + 1 - lo)
    return out


def block_average(x, nblocks: int = 10) -> tuple[float, float]:
    """Mean and block-standard-error of a correlated series.

    Splits the series into *nblocks* contiguous blocks; the standard error
    of the block means is the usual defensible error bar for MD averages.
    """
    x = np.asarray(x, dtype=float)
    if nblocks < 2:
        raise GeometryError("need at least 2 blocks")
    if len(x) < nblocks:
        raise GeometryError(f"series of {len(x)} too short for {nblocks} blocks")
    usable = (len(x) // nblocks) * nblocks
    blocks = x[:usable].reshape(nblocks, -1).mean(axis=1)
    mean = float(blocks.mean())
    sem = float(blocks.std(ddof=1) / np.sqrt(nblocks))
    return mean, sem


def drift_per_step(x) -> float:
    """Least-squares slope of a series (e.g. conserved-energy drift)."""
    x = np.asarray(x, dtype=float)
    if len(x) < 2:
        return 0.0
    t = np.arange(len(x), dtype=float)
    return float(np.polyfit(t, x, 1)[0])

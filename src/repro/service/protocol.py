"""The batch-service wire protocol: JSON-lines requests and responses.

One request per line, one response per line, matched by a client-chosen
``id`` echoed back verbatim.  The same message dicts flow through the
in-process :class:`~repro.service.client.BatchClient` (no serialization)
and the Unix-socket server (``json.dumps`` + ``\\n``), so every byte of
behaviour exercised by the socket path is also exercised by the tests'
in-process path.  Python's ``json`` round-trips floats through ``repr``,
so positions survive the socket bit-for-bit — the service's state-reuse
parity guarantee holds across the wire, not just in process.

Request envelope::

    {"id": <any>, "op": "<op>", ...op fields...}

Success / error responses::

    {"id": <echoed>, "ok": true,  ...result fields...}
    {"id": <echoed>, "ok": false, "error": {"type": "...", "message": "..."}}

Ops
---
``ping``
    Liveness probe → ``{"pong": true}``.
``load``
    Register a structure: ``structure_id``, ``structure`` (see
    :func:`encode_atoms`), optional ``calc`` spec dict (see
    :func:`repro.calculators.make_calculator`).
``eval``
    Energy (and with ``forces: true`` forces/stress) of a registered
    structure; optional ``positions`` / ``cell`` update the resident
    structure in place first — consecutive evals with drifting positions
    ride the calculator's state-reuse fast path.
``relax_step``
    One damped steepest-descent step on the resident structure
    (``step_size``, ``max_step`` Å); returns ``energy``, ``fmax`` and the
    new ``positions``.
``sweep``
    Strain-sweep/EOS on the resident structure with its warm calculator
    (``mode``, ``amplitudes`` *or* ``amplitude``/``npoints``, ``axis``,
    ``fit``, ``forces``, ``energy_ref``); returns the
    :meth:`repro.analysis.strain_sweep.StrainSweepResult.as_dict`
    payload.  The resident geometry itself is untouched (every point
    evaluates a strained copy).
``unload`` / ``list`` / ``stats``
    Lifecycle and introspection.
``metrics``
    ``stats`` plus the full :mod:`repro.obs` registry snapshot
    (counters, gauges, histogram summaries) for the server process.
``shutdown``
    Ask the server to drain and stop (socket transport only).
``debug_crash``
    Kill the worker that owns ``structure_id`` (only honoured when the
    service was built with ``debug_ops=True`` — the crash-recovery tests'
    fault injector).
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import ProtocolError, ReproError

#: every op the service understands; ``shutdown`` is intercepted by the
#: socket transport, the rest reach :class:`repro.service.service.BatchService`
OPS = ("ping", "load", "eval", "relax_step", "sweep", "unload", "list",
       "stats", "metrics", "shutdown", "debug_crash")

#: ops that address one structure and therefore route to its sticky worker
STRUCTURE_OPS = ("load", "eval", "relax_step", "sweep", "unload",
                 "debug_crash")


def encode_atoms(atoms) -> dict:
    """Structure → plain-JSON dict (symbols, positions, cell, pbc)."""
    return {
        "symbols": list(atoms.symbols),
        "positions": np.asarray(atoms.positions, dtype=float).tolist(),
        "cell": np.asarray(atoms.cell.matrix, dtype=float).tolist(),
        "pbc": [bool(p) for p in atoms.cell.pbc],
    }


def decode_atoms(d: dict):
    """Plain-JSON dict → :class:`~repro.geometry.atoms.Atoms` (validated)."""
    from repro.geometry.atoms import Atoms
    from repro.geometry.cell import Cell

    if not isinstance(d, dict):
        raise ProtocolError("'structure' must be an object")
    for key in ("symbols", "positions"):
        if key not in d:
            raise ProtocolError(f"structure is missing {key!r}")
    try:
        positions = as_positions(d["positions"])
        cell = d.get("cell")
        if cell is not None:
            cell = Cell(as_cell(cell),
                        pbc=tuple(d.get("pbc", (True, True, True))))
        return Atoms(list(d["symbols"]), positions, cell=cell)
    except ReproError:
        raise
    except Exception as exc:
        raise ProtocolError(f"bad structure payload: {exc}") from exc


def as_positions(obj) -> np.ndarray:
    """Validate an (N, 3) float position payload."""
    try:
        pos = np.asarray(obj, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"positions are not numeric: {exc}") from exc
    if pos.ndim != 2 or pos.shape[1] != 3 or not np.isfinite(pos).all():
        raise ProtocolError(
            f"positions must be a finite (N, 3) array, got shape "
            f"{getattr(pos, 'shape', None)}")
    return pos


def as_cell(obj) -> np.ndarray:
    """Validate a 3×3 float cell-matrix payload."""
    try:
        mat = np.asarray(obj, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"cell is not numeric: {exc}") from exc
    if mat.shape != (3, 3):
        raise ProtocolError(f"cell must be 3x3, got {mat.shape}")
    return mat


def validate_request(req) -> dict:
    """Check the envelope of one decoded request (op known, id JSON-safe)."""
    if not isinstance(req, dict):
        raise ProtocolError(f"request must be an object, got {type(req).__name__}")
    op = req.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; valid ops: {', '.join(OPS)}")
    if op in STRUCTURE_OPS:
        sid = req.get("structure_id")
        if not isinstance(sid, str) or not sid:
            raise ProtocolError(f"op {op!r} needs a non-empty string "
                                f"'structure_id'")
    return req


def ok_response(req, **fields) -> dict:
    resp = {"id": req.get("id"), "ok": True}
    resp.update(fields)
    return resp


def error_response(req, exc: Exception) -> dict:
    """Uniform error envelope; the exception class name is the ``type``."""
    rid = req.get("id") if isinstance(req, dict) else None
    return {"id": rid, "ok": False,
            "error": {"type": type(exc).__name__, "message": str(exc)}}


def _jsonable(obj):
    """json.dumps fallback: numpy arrays/scalars → plain Python."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def dumps(message: dict) -> bytes:
    """One protocol line, newline-terminated, ready for ``sendall``."""
    return (json.dumps(message, separators=(",", ":"), allow_nan=False,
                       default=_jsonable) + "\n").encode()


def loads(line: bytes | str) -> dict:
    """Decode one protocol line; raises :class:`ProtocolError` on garbage."""
    try:
        return json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc

"""The batch-service wire protocol: JSON-lines requests and responses.

One request per line, one response per line, matched by a client-chosen
``id`` echoed back verbatim.  The same message dicts flow through the
in-process :class:`~repro.service.client.BatchClient` (no serialization)
and the Unix-socket server (``json.dumps`` + ``\\n``), so every byte of
behaviour exercised by the socket path is also exercised by the tests'
in-process path.  Python's ``json`` round-trips floats through ``repr``,
so positions survive the socket bit-for-bit — the service's state-reuse
parity guarantee holds across the wire, not just in process.

Request envelope::

    {"id": <any>, "op": "<op>", ...op fields...}

Success / error responses are one :class:`Result` envelope::

    {"id": <echoed>, "ok": true,  "value": {...op result fields...},
     "timings": {"seconds": ...}, "metrics": {...}}
    {"id": <echoed>, "ok": false,
     "error": {"type": "...", "message": "...", "op": "<op>"}}

``value`` carries the op-specific payload; ``timings`` the server-side
wall-clock spent on the request; ``metrics`` op-level counters (e.g.
``warm`` for state-reuse ops).  The campaign store
(:mod:`repro.scenarios.store`) ingests every op through this one shape.
:class:`Result` keeps *flat* access working — ``resp["energy"]`` falls
through into ``value`` — so pre-envelope clients and the convenience
methods on :class:`~repro.service.client.BatchClient` read either form
(:meth:`Result.from_response` upgrades flat dicts from old servers).

Ops
---
``ping``
    Liveness probe → ``{"pong": true}``.
``load``
    Register a structure: ``structure_id``, ``structure`` (see
    :func:`encode_atoms`), optional ``calc`` spec dict (see
    :func:`repro.calculators.make_calculator`).
``eval``
    Energy (and with ``forces: true`` forces/stress) of a registered
    structure; optional ``positions`` / ``cell`` update the resident
    structure in place first — consecutive evals with drifting positions
    ride the calculator's state-reuse fast path.
``relax_step``
    One damped steepest-descent step on the resident structure
    (``step_size``, ``max_step`` Å); returns ``energy``, ``fmax`` and the
    new ``positions``.
``sweep``
    Strain-sweep/EOS on the resident structure with its warm calculator
    (``mode``, ``amplitudes`` *or* ``amplitude``/``npoints``, ``axis``,
    ``fit``, ``forces``, ``energy_ref``); returns the
    :meth:`repro.analysis.strain_sweep.StrainSweepResult.as_dict`
    payload.  The resident geometry itself is untouched (every point
    evaluates a strained copy).
``frames``
    Stream a frame range from a stored trajectory: ``traj_ref`` (the
    handle a trajectory-producing op put in its ``value``), optional
    ``start``/``stop``/``stride``.  Served by the service's
    :class:`~repro.trajio.store.TrajStore` directly — no worker and no
    re-materialized run; each frame is one :func:`encode_frame` dict.
``unload`` / ``list`` / ``stats``
    Lifecycle and introspection.
``metrics``
    ``stats`` plus the full :mod:`repro.obs` registry snapshot
    (counters, gauges, histogram summaries) for the server process.
``shutdown``
    Ask the server to drain and stop (socket transport only).
``debug_crash``
    Kill the worker that owns ``structure_id`` (only honoured when the
    service was built with ``debug_ops=True`` — the crash-recovery tests'
    fault injector).
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import ProtocolError, ReproError

#: every op the service understands; ``shutdown`` is intercepted by the
#: socket transport, the rest reach :class:`repro.service.service.BatchService`
OPS = ("ping", "load", "eval", "relax_step", "sweep", "frames", "unload",
       "list", "stats", "metrics", "shutdown", "debug_crash")

#: ops that address one structure and therefore route to its sticky worker
STRUCTURE_OPS = ("load", "eval", "relax_step", "sweep", "unload",
                 "debug_crash")


def encode_atoms(atoms: Any) -> dict:
    """Structure → plain-JSON dict (symbols, positions, cell, pbc)."""
    return {
        "symbols": list(atoms.symbols),
        "positions": np.asarray(atoms.positions, dtype=float).tolist(),
        "cell": np.asarray(atoms.cell.matrix, dtype=float).tolist(),
        "pbc": [bool(p) for p in atoms.cell.pbc],
    }


def encode_frame(frame: Any) -> dict:
    """Trajectory frame → plain-JSON dict (the ``frames`` op payload).

    *frame* is anything shaped like
    :class:`~repro.trajio.reader.TrajFrame`: scalar metadata plus
    positions/cell/pbc and optional velocities.
    """
    out = {
        "step": int(frame.step),
        "time_fs": float(frame.time_fs),
        "epot": float(frame.epot),
        "ekin": float(frame.ekin),
        "temperature": float(frame.temperature),
        "positions": np.asarray(frame.positions, dtype=float).tolist(),
        "cell": np.asarray(frame.cell.matrix, dtype=float).tolist(),
        "pbc": [bool(p) for p in frame.cell.pbc],
    }
    if frame.velocities is not None:
        out["velocities"] = np.asarray(frame.velocities,
                                       dtype=float).tolist()
    return out


def decode_atoms(d: dict) -> Any:
    """Plain-JSON dict → :class:`~repro.geometry.atoms.Atoms` (validated)."""
    from repro.geometry.atoms import Atoms
    from repro.geometry.cell import Cell

    if not isinstance(d, dict):
        raise ProtocolError("'structure' must be an object")
    for key in ("symbols", "positions"):
        if key not in d:
            raise ProtocolError(f"structure is missing {key!r}")
    try:
        positions = as_positions(d["positions"])
        cell = d.get("cell")
        if cell is not None:
            cell = Cell(as_cell(cell),
                        pbc=tuple(d.get("pbc", (True, True, True))))
        return Atoms(list(d["symbols"]), positions, cell=cell)
    except ReproError:
        raise
    except Exception as exc:
        raise ProtocolError(f"bad structure payload: {exc}") from exc


def as_positions(obj: Any) -> np.ndarray:
    """Validate an (N, 3) float position payload."""
    try:
        pos = np.asarray(obj, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"positions are not numeric: {exc}") from exc
    if pos.ndim != 2 or pos.shape[1] != 3 or not np.isfinite(pos).all():
        raise ProtocolError(
            f"positions must be a finite (N, 3) array, got shape "
            f"{getattr(pos, 'shape', None)}")
    return pos


def as_cell(obj: Any) -> np.ndarray:
    """Validate a 3×3 float cell-matrix payload."""
    try:
        mat = np.asarray(obj, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"cell is not numeric: {exc}") from exc
    if mat.shape != (3, 3):
        raise ProtocolError(f"cell must be 3x3, got {mat.shape}")
    return mat


def validate_request(req: Any) -> dict:
    """Check the envelope of one decoded request (op known, id JSON-safe)."""
    if not isinstance(req, dict):
        raise ProtocolError(f"request must be an object, got {type(req).__name__}")
    op = req.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; valid ops: {', '.join(OPS)}")
    if op in STRUCTURE_OPS:
        sid = req.get("structure_id")
        if not isinstance(sid, str) or not sid:
            raise ProtocolError(f"op {op!r} needs a non-empty string "
                                f"'structure_id'")
    if op == "frames":
        ref = req.get("traj_ref")
        if not isinstance(ref, str) or not ref:
            raise ProtocolError("op 'frames' needs a non-empty string "
                                "'traj_ref'")
    return req


#: keys that live in the envelope itself; everything else is payload
ENVELOPE_KEYS = ("id", "ok", "value", "error", "timings", "metrics")


class Result(dict):
    """The one response envelope every op and CLI command returns.

    A ``dict`` subclass whose *stored* mapping is the envelope
    (``id`` / ``ok`` / ``value`` / ``error`` / ``timings`` /
    ``metrics``) — so ``json.dumps`` (and :func:`dumps`) emit the
    enveloped wire format — while item access falls through into
    ``value`` for any non-envelope key: ``resp["energy"]`` keeps
    working for every pre-envelope call site.  Writes to non-envelope
    keys land in ``value`` too (the client normalises ``forces`` to an
    array in place).

    Use :meth:`success` / :meth:`failure` to build one,
    :meth:`from_response` to adopt whatever came off the wire.
    """

    # -- typed accessors ---------------------------------------------------
    @property
    def ok(self) -> bool:
        return bool(dict.get(self, "ok"))

    @property
    def value(self) -> dict:
        return dict.get(self, "value") or {}

    @property
    def error(self) -> dict | None:
        return dict.get(self, "error")

    @property
    def timings(self) -> dict:
        return dict.get(self, "timings") or {}

    @property
    def metrics(self) -> dict:
        return dict.get(self, "metrics") or {}

    # -- flat-access compatibility ----------------------------------------
    def __getitem__(self, key: Any) -> Any:
        if dict.__contains__(self, key):
            return dict.__getitem__(self, key)
        value = dict.get(self, "value")
        if isinstance(value, dict) and key in value:
            return value[key]
        # the Mapping contract: __getitem__ signals a missing key with
        # KeyError, which dict.get/`in` and every caller rely on
        raise KeyError(key)  # reprolint: disable=error-discipline

    def __contains__(self, key: object) -> bool:
        if dict.__contains__(self, key):
            return True
        value = dict.get(self, "value")
        return isinstance(value, dict) and key in value

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __setitem__(self, key: Any, val: Any) -> None:
        if key in ENVELOPE_KEYS:
            dict.__setitem__(self, key, val)
            return
        value = dict.get(self, "value")
        if not isinstance(value, dict):
            value = {}
            dict.__setitem__(self, "value", value)
        value[key] = val

    # -- constructors ------------------------------------------------------
    @classmethod
    def success(cls, value: dict | None = None, *, id: Any = None,
                timings: dict | None = None,
                metrics: dict | None = None) -> "Result":
        resp = cls({"id": id, "ok": True, "value": dict(value or {})})
        if timings:
            dict.__setitem__(resp, "timings", dict(timings))
        if metrics:
            dict.__setitem__(resp, "metrics", dict(metrics))
        return resp

    @classmethod
    def failure(cls, exc: Exception, *, id: Any = None,
                op: str | None = None) -> "Result":
        err = {"type": type(exc).__name__, "message": str(exc)}
        if op is not None:
            err["op"] = op
        return cls({"id": id, "ok": False, "error": err})

    @classmethod
    def from_response(cls, resp: Any) -> "Result":
        """Adopt a decoded response: envelopes pass through, legacy flat
        payloads (pre-envelope servers) get their non-envelope keys
        folded into ``value`` so callers see one shape."""
        if isinstance(resp, cls):
            return resp
        if not isinstance(resp, dict):
            raise ProtocolError(
                f"response must be an object, got {type(resp).__name__}")
        out = cls({k: resp[k] for k in ENVELOPE_KEYS if k in resp})
        extra = {k: v for k, v in resp.items() if k not in ENVELOPE_KEYS}
        if extra:
            value = dict.get(out, "value")
            if isinstance(value, dict):
                value = {**value, **extra}
            else:
                value = extra
            dict.__setitem__(out, "value", value)
        return out

    def merge_timings(self, **fields: Any) -> "Result":
        timings = dict(dict.get(self, "timings") or {})
        timings.update(fields)
        dict.__setitem__(self, "timings", timings)
        return self

    def merge_metrics(self, **fields: Any) -> "Result":
        metrics = dict(dict.get(self, "metrics") or {})
        metrics.update(fields)
        dict.__setitem__(self, "metrics", metrics)
        return self


def ok_response(req: dict, **fields: Any) -> Result:
    """Success :class:`Result` for *req*; ``timings``/``metrics`` kwargs
    land in their envelope slots, everything else is the ``value``."""
    timings = fields.pop("timings", None)
    metrics = fields.pop("metrics", None)
    return Result.success(fields, id=req.get("id"),
                          timings=timings, metrics=metrics)


def error_response(req: Any, exc: Exception) -> Result:
    """Uniform error envelope; the exception class name is the ``type``,
    the request's op (when known) rides along for context."""
    rid = req.get("id") if isinstance(req, dict) else None
    op = req.get("op") if isinstance(req, dict) else None
    return Result.failure(exc, id=rid, op=op)


def _jsonable(obj: Any) -> Any:
    """json.dumps fallback: numpy arrays/scalars → plain Python."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    # json.dumps requires its default hook to raise TypeError
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")  # reprolint: disable=error-discipline


def dumps(message: dict) -> bytes:
    """One protocol line, newline-terminated, ready for ``sendall``."""
    return (json.dumps(message, separators=(",", ":"), allow_nan=False,
                       default=_jsonable) + "\n").encode()


def loads(line: bytes | str) -> dict:
    """Decode one protocol line; raises :class:`ProtocolError` on garbage."""
    try:
        return json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc

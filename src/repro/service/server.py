"""JSON-lines-over-Unix-socket transport for the batch service.

One accept thread, one reader thread per connection, one dispatcher
thread.  Readers decode lines into request dicts and enqueue them on the
shared :class:`~repro.service.batcher.CoalescingQueue` together with a
reply callback bound to their connection; the dispatcher drains the
queue in coalesced batches, hands each batch to
:meth:`BatchService.submit_many`, and routes every response back to the
connection its request came from.  Malformed lines are answered
immediately with an error response (id ``null``) — a broken client never
reaches the service core, let alone takes it down.

A ``shutdown`` request (or :meth:`UnixSocketServer.stop`) drains the
queue, closes the listener and unlinks the socket path.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading

from repro.errors import ServiceError
from repro.service import protocol
from repro.service.batcher import CoalescingQueue
from repro.service.service import BatchService
from repro.utils.timing import tick


class UnixSocketServer:
    """Serve a :class:`BatchService` on a Unix stream socket.

    Parameters
    ----------
    service :
        The :class:`~repro.service.service.BatchService` to expose.
    socket_path :
        Filesystem path of the Unix socket (created on :meth:`start`,
        unlinked on :meth:`stop`).
    batch_window_s, max_batch :
        Coalescing knobs (see :class:`CoalescingQueue`).
    """

    def __init__(self, service: BatchService, socket_path: str,
                 batch_window_s: float = 0.002, max_batch: int = 64):
        self.service = service
        self.socket_path = str(socket_path)
        self.queue = CoalescingQueue(batch_window_s=batch_window_s,
                                     max_batch=max_batch)
        service._queue_depth_fn = self.queue.depth
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._dispatch_thread: threading.Thread | None = None
        self._reader_threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()
        self._stop = threading.Event()
        self._started = threading.Event()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Bind, listen and spin up the accept + dispatch threads."""
        if self._listener is not None:
            raise ServiceError("server already started")
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.socket_path)
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True)
        self._dispatch_thread = threading.Thread(
            target=self._dispatch_loop, name="service-dispatch", daemon=True)
        self._accept_thread.start()
        self._dispatch_thread.start()
        self._started.set()

    def serve_forever(self) -> None:
        """start() then block until a shutdown request (or stop())."""
        if self._listener is None:
            self.start()
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            pass
        self.stop()

    def stop(self) -> None:
        """Drain in-flight work, close the listener, unlink the socket.

        Order matters: the dispatcher is joined *first* so every queued
        request is answered over its still-open connection; only then
        are the client sockets closed.
        """
        self._stop.set()
        me = threading.current_thread()
        if self._dispatch_thread is not None and self._dispatch_thread is not me:
            # generous: a full coalesced batch of heavy evals may
            # legitimately take minutes, and clients were promised their
            # queued responses
            self._dispatch_thread.join(timeout=300.0)
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
            self._listener = None
        with self._conns_lock:
            conns, self._conns = list(self._conns), set()
        for conn in conns:
            with contextlib.suppress(OSError):
                conn.close()
        for t in [self._accept_thread, *self._reader_threads]:
            if t is not None and t is not me:
                t.join(timeout=5.0)
        self._reader_threads.clear()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)
        self.service.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info):
        self.stop()

    # -- threads ------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                # periodic pass: also prune reader threads whose
                # connections are long gone
                self._reader_threads = [t for t in self._reader_threads
                                        if t.is_alive()]
                continue
            except OSError:
                return
            with self._conns_lock:
                self._conns.add(conn)
            t = threading.Thread(target=self._reader_loop, args=(conn,),
                                 name="service-reader", daemon=True)
            t.start()
            self._reader_threads.append(t)

    def _reply_fn(self, conn: socket.socket, lock: threading.Lock):
        def reply(resp: dict) -> None:
            try:
                payload = protocol.dumps(resp)
            except (TypeError, ValueError) as exc:
                payload = protocol.dumps(protocol.error_response(
                    {"id": resp.get("id")},
                    ServiceError(f"unserializable response: {exc}")))
            try:
                with lock:
                    # the connection's 0.2 s recv-poll timeout is far too
                    # tight for a multi-MB force payload to a client that
                    # is momentarily busy; give the send its own bound
                    conn.settimeout(30.0)
                    try:
                        conn.sendall(payload)
                    finally:
                        conn.settimeout(0.2)
            except OSError:
                # a failed/partial send leaves the JSON-lines stream
                # unparsable — kill the connection rather than keep
                # appending mid-line garbage the client cannot frame
                self._close_conn(conn)
        return reply

    def _close_conn(self, conn: socket.socket) -> None:
        with self._conns_lock:
            self._conns.discard(conn)
        with contextlib.suppress(OSError):
            conn.close()

    def _reader_loop(self, conn: socket.socket) -> None:
        reply = self._reply_fn(conn, threading.Lock())
        conn.settimeout(0.2)
        buf = b""
        while not self._stop.is_set():
            try:
                chunk = conn.recv(1 << 16)
            except socket.timeout:
                continue
            except OSError:
                self._close_conn(conn)
                return
            if not chunk:          # peer hung up
                self._close_conn(conn)
                return
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                if not line.strip():
                    continue
                self._handle_line(line, reply)
        # shutting down: requests this client already sent (kernel- or
        # userspace-buffered) are still admitted — shutdown stops
        # *future* traffic, not work in flight
        with contextlib.suppress(OSError):
            conn.setblocking(False)
            while True:
                chunk = conn.recv(1 << 16)
                if not chunk:
                    break
                buf += chunk
        *lines, _partial = buf.split(b"\n")   # no trailing \n = incomplete
        for line in lines:
            if line.strip():
                self._handle_line(line, reply)
        # leave the connection open — the dispatcher may still owe this
        # client responses; stop() closes it after the queue is drained

    def _handle_line(self, line: bytes, reply) -> None:
        try:
            req = protocol.validate_request(protocol.loads(line))
        except Exception as exc:
            reply(protocol.error_response(None, exc))
            return
        req["_t0"] = tick()     # queue wait counts as latency
        if req["op"] == "shutdown":
            # answer first, then let the dispatcher drain what is queued
            reply(protocol.ok_response(req, draining=True))
            self._stop.set()
            return
        self.queue.put((req, reply))

    def _dispatch_loop(self) -> None:
        while True:
            batch = self.queue.get_batch(timeout=0.1)
            if not batch:
                if self._stop.is_set() and not any(
                        t.is_alive() for t in self._reader_threads):
                    return   # stop requested, readers done, queue drained
                continue
            requests = [req for req, _ in batch]
            try:
                responses = self.service.submit_many(requests)
            except Exception as exc:   # pragma: no cover - defensive
                responses = [protocol.error_response(r, exc)
                             for r in requests]
            for (_, reply), resp in zip(batch, responses):
                reply(resp)

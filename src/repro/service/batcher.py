"""Request coalescing for the socket transport.

Connection reader threads push ``(request, reply)`` pairs into a
:class:`CoalescingQueue`; a single dispatcher thread pulls *batches*:
it blocks for the first item, then keeps gathering until the queue runs
dry, a short coalescing window expires, or the batch cap is hit.  The
gathered batch goes to :meth:`BatchService.submit_many` in one call, so
requests that arrive close together — 16 MD clients all asking for
forces at once — are grouped into per-worker batches instead of paying
one dispatch round-trip each.

The queue is also the service's back-pressure signal: its depth is what
the ``stats`` endpoint reports.
"""

from __future__ import annotations

import queue
import time


class CoalescingQueue:
    """A thread-safe queue drained in adaptive batches."""

    def __init__(self, batch_window_s: float = 0.002, max_batch: int = 64):
        self._q: queue.Queue = queue.Queue()
        self.batch_window_s = float(batch_window_s)
        self.max_batch = int(max_batch)

    def put(self, item) -> None:
        self._q.put(item)

    def depth(self) -> int:
        return self._q.qsize()

    def get_batch(self, timeout: float = 0.25) -> list:
        """Block up to *timeout* for the first item, then coalesce.

        Returns an empty list on timeout (the dispatcher uses that to
        poll its stop flag).
        """
        try:
            first = self._q.get(timeout=timeout)
        except queue.Empty:
            return []
        batch = [first]
        deadline = time.monotonic() + self.batch_window_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0:
                    batch.append(self._q.get_nowait())
                else:
                    batch.append(self._q.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

"""A client-side calculator backed by the batch service.

:class:`RemoteCalculator` implements the calculator surface the MD
driver and the relaxers consume (``compute`` / ``get_potential_energy``
/ ``get_forces``) but forwards every evaluation to a service-resident
structure — the structure's sticky worker keeps the real calculator's
state warm between calls, so a client-side MD loop gets the fast path
"for free" across process boundaries.

The positions (and cell, when it changes) are shipped with every
``compute``; results come back as plain floats/arrays.  ``state_report``
returns locally counted client-side statistics — deliberately *not* a
``stats`` round-trip, so the MD driver's per-step ``calc_report``
attachment stays cheap.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class RemoteCalculator:
    """Evaluate a service-resident structure through a client.

    Parameters
    ----------
    client :
        A :class:`~repro.service.client.BatchClient` or
        :class:`~repro.service.client.SocketClient`.
    structure_id :
        The resident structure this calculator drives.
    atoms, calc :
        When given, ``load`` the structure on construction (otherwise it
        must already be resident).
    """

    def __init__(self, client, structure_id: str, atoms=None,
                 calc: dict | None = None):
        self.client = client
        self.structure_id = structure_id
        self._last_cell = None
        self._evals = 0
        self._warm = 0
        if atoms is not None:
            self.client.load(structure_id, atoms, calc=calc)
            self._last_cell = np.array(atoms.cell.matrix, dtype=float)

    def compute(self, atoms, forces: bool = True) -> dict:
        cell = np.asarray(atoms.cell.matrix, dtype=float)
        send_cell = (self._last_cell is None
                     or not np.array_equal(cell, self._last_cell))
        res = self.client.evaluate(
            self.structure_id, positions=atoms.positions,
            cell=cell if send_cell else None, forces=forces)
        self._last_cell = cell.copy()
        self._evals += 1
        self._warm += bool(res.get("warm"))
        return res

    def get_potential_energy(self, atoms) -> float:
        return self.compute(atoms, forces=False)["energy"]

    def get_free_energy(self, atoms) -> float:
        return self.compute(atoms, forces=False)["free_energy"]

    def get_forces(self, atoms) -> np.ndarray:
        return self.compute(atoms, forces=True)["forces"]

    def get_eigenvalues(self, atoms):
        raise ModelError("the batch service does not ship eigen-spectra; "
                         "use a local TBCalculator for eigenvalues")

    def state_report(self) -> dict:
        """Client-side counters only (no server round-trip)."""
        return {"remote": True, "structure_id": self.structure_id,
                "evals": self._evals, "warm_evals": self._warm}

    def __repr__(self) -> str:
        return (f"RemoteCalculator(structure_id={self.structure_id!r}, "
                f"evals={self._evals})")

"""A resident calculator worker: one owner per structure, state kept hot.

Each :class:`Worker` holds a set of structures as live
:class:`~repro.geometry.atoms.Atoms` objects paired with the calculator
that has been evaluating them (:class:`LinearScalingCalculator`,
:class:`TBCalculator`, …).  Because the service routes every request for
a structure to the *same* worker (sticky routing), consecutive requests
hit the calculator's persistent state — Verlet lists, sparse-H patterns,
localization regions, spectral window, warm μ — through the normal
:class:`repro.state.CalculatorState` contract.  The worker does nothing
special to enable that; it just refrains from throwing the calculator
away between requests, which is exactly what the one-shot CLI cannot do.

Error containment: any :class:`~repro.errors.ReproError` raised while
handling a request (unknown structure, bad model input, non-convergence)
is converted to an error *response* for that request alone.  Anything
else escaping :meth:`Worker.handle` is treated by the service as a
worker **crash**: the worker object is discarded, and its structures are
re-materialized from their snapshots on next touch.
"""

from __future__ import annotations

import time

from repro.calculators import CalculatorSpec, make_calculator
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.log import get_logger, log_context
from repro.service import protocol
from repro.utils.memory import resident_bytes
from repro.utils.timing import tick

log = get_logger(__name__)


class WorkerCrashError(Exception):
    """Deliberately *not* a ReproError: the fault injector behind the
    ``debug_crash`` op, modelling segfault-class failures that must take
    the whole worker down rather than answer politely."""


class StructureSlot:
    """One resident structure: live atoms + calculator + counters."""

    def __init__(self, structure_id: str, atoms, calc_spec):
        self.structure_id = structure_id
        self.atoms = atoms
        # op context rides into every spec validation error, so a typo'd
        # field in a request is reported against the op that carried it
        self.calc_spec = CalculatorSpec.from_dict(calc_spec,
                                                  context="op 'load'")
        self.calc = make_calculator(self.calc_spec)
        self.evals = 0
        self.created = time.monotonic()
        self.last_used = self.created
        self.bytes_estimate = 0

    def refresh_accounting(self) -> None:
        self.last_used = time.monotonic()
        self.bytes_estimate = resident_bytes(self.calc) \
            + resident_bytes(self.atoms)


class Worker:
    """Handles one batch of requests at a time for its resident structures."""

    def __init__(self, worker_id: int, debug_ops: bool = False,
                 traj_store=None):
        self.worker_id = worker_id
        self.debug_ops = bool(debug_ops)
        # zero-arg callable returning the service's TrajStore (lazy so
        # services that never record a trajectory never create one)
        self._traj_store = traj_store
        self.slots: dict[str, StructureSlot] = {}

    # -- lifecycle (called by the service, not by clients directly) --------
    def load_structure(self, structure_id: str, atoms, calc_spec: dict
                       ) -> StructureSlot:
        slot = StructureSlot(structure_id, atoms, calc_spec)
        self.slots[structure_id] = slot
        return slot

    def evict(self, structure_id: str) -> None:
        self.slots.pop(structure_id, None)

    def resident_ids(self) -> list[str]:
        return list(self.slots)

    def resident_bytes_total(self) -> int:
        return sum(s.bytes_estimate for s in self.slots.values())

    # -- request handling ---------------------------------------------------
    def handle(self, req: dict) -> protocol.Result:
        """One request → one :class:`~repro.service.protocol.Result`.
        ReproErrors become error responses; everything else propagates
        as a crash.  Server-side wall-clock lands in the envelope's
        ``timings`` slot and the state-reuse ``warm`` flag is mirrored
        into ``metrics`` — the campaign store reads both without
        knowing any op-specific payload."""
        with log_context(worker=self.worker_id,
                         structure=req.get("structure_id")):
            t0 = tick()
            resp = self._handle(req)
            if isinstance(resp, protocol.Result):
                resp.merge_timings(seconds=tick() - t0)
                if resp.ok and "warm" in resp.value:
                    resp.merge_metrics(warm=bool(resp.value["warm"]))
            return resp

    def _handle(self, req: dict) -> dict:
        try:
            op = req["op"]
            log.debug("handling op %r", op)
            if op == "eval":
                return self._op_eval(req)
            if op == "relax_step":
                return self._op_relax_step(req)
            if op == "sweep":
                return self._op_sweep(req)
            if op == "load":
                return self._op_load(req)
            if op == "unload":
                self.evict(req["structure_id"])
                return protocol.ok_response(req, unloaded=True)
            if op == "debug_crash":
                if not self.debug_ops:
                    raise ServiceError(
                        "debug_crash is disabled (start the service with "
                        "debug_ops=True to enable fault injection)")
                raise WorkerCrashError(
                    f"debug_crash requested for worker {self.worker_id}")
            raise ProtocolError(f"op {op!r} is not a worker op")
        except WorkerCrashError:
            raise
        except ReproError as exc:
            # calculator/protocol-level failures answer politely; anything
            # else (programming errors, fault injection) crashes the
            # worker and the service rebuilds it
            return protocol.error_response(req, exc)

    def _slot(self, req: dict) -> StructureSlot:
        sid = req["structure_id"]
        slot = self.slots.get(sid)
        if slot is None:
            raise ServiceError(
                f"structure {sid!r} is not resident on worker "
                f"{self.worker_id} — load it first")
        return slot

    def _op_load(self, req: dict) -> dict:
        sid = req["structure_id"]
        atoms = req.get("_atoms")
        if atoms is None:
            atoms = protocol.decode_atoms(req.get("structure"))
        slot = self.load_structure(sid, atoms, req.get("calc") or {})
        slot.refresh_accounting()
        return protocol.ok_response(
            req, structure_id=sid, natoms=len(atoms),
            worker=self.worker_id,
            calculator=type(slot.calc).__name__)

    def _apply_geometry(self, slot: StructureSlot, req: dict):
        """Update the resident structure in place from request fields.

        *Every* field is validated before anything is mutated, and the
        pre-request geometry is returned so a failing compute can be
        rolled back — an error response must leave the resident
        structure exactly where the client last saw it succeed.
        """
        pos = cell = None
        if req.get("positions") is not None:
            pos = protocol.as_positions(req["positions"])
            if pos.shape != slot.atoms.positions.shape:
                raise ProtocolError(
                    f"positions shape {pos.shape} does not match resident "
                    f"structure {slot.atoms.positions.shape}")
        if req.get("cell") is not None:
            from repro.geometry.cell import Cell

            cell = Cell(protocol.as_cell(req["cell"]),
                        pbc=slot.atoms.cell.pbc)
        if pos is None and cell is None:
            return None
        undo = (slot.atoms.positions.copy(), slot.atoms.cell)
        if pos is not None:
            slot.atoms.positions[:] = pos
        if cell is not None:
            slot.atoms.cell = cell
        return undo

    @staticmethod
    def _revert_geometry(slot: StructureSlot, undo) -> None:
        if undo is not None:
            slot.atoms.positions[:] = undo[0]
            slot.atoms.cell = undo[1]

    def _op_eval(self, req: dict) -> dict:
        slot = self._slot(req)
        undo = self._apply_geometry(slot, req)
        warm = slot.evals > 0
        want_forces = bool(req.get("forces", True))
        try:
            res = slot.calc.compute(slot.atoms, forces=want_forces)
        except ReproError:
            self._revert_geometry(slot, undo)
            raise
        slot.evals += 1
        slot.refresh_accounting()
        out = {
            "structure_id": slot.structure_id,
            "natoms": len(slot.atoms),
            "energy": res["energy"],
            "free_energy": res.get("free_energy", res["energy"]),
            "warm": warm,
            "worker": self.worker_id,
        }
        for key in ("fermi_level", "pressure_gpa", "gap"):
            if key in res:
                out[key] = res[key]
        if want_forces:
            # copy: the response must never alias the calculator's
            # cached results array (an in-process client mutating the
            # returned forces would otherwise corrupt the cache)
            out["forces"] = res["forces"].copy()
        return protocol.ok_response(req, **out)

    def _op_sweep(self, req: dict) -> dict:
        """Strain-sweep/EOS the resident structure with its warm
        calculator.  The resident geometry is never mutated — every
        point evaluates a strained copy — but the calculator state ends
        at the last strain point, so the next plain eval recomputes
        (correctly, through the normal state contract)."""
        import numpy as np

        from repro.analysis.strain_sweep import strain_sweep, sweep_amplitudes

        slot = self._slot(req)
        warm = slot.evals > 0
        mode = req.get("mode", "volumetric")
        fit = req.get("fit", "birch")
        if fit in (None, "none"):
            fit = None
        try:
            if req.get("amplitudes") is not None:
                amplitudes = np.asarray(req["amplitudes"], dtype=float)
                if amplitudes.ndim != 1 or len(amplitudes) == 0:
                    raise ProtocolError(
                        "bad sweep parameters: amplitudes must be a "
                        "non-empty list")
            else:
                amplitudes = sweep_amplitudes(req.get("amplitude", 0.04),
                                              req.get("npoints", 9))
            axis = int(req.get("axis", 2))
            energy_ref = float(req.get("energy_ref", 0.0))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad sweep parameters: {exc}") from exc
        traj_ref = None
        traj_writer = None
        if req.get("traj"):
            # record every strained geometry into the service's result
            # store; only the small ref rides back in the envelope
            if self._traj_store is None:
                raise ServiceError(
                    "this service has no trajectory store; "
                    "'traj': true is unavailable")
            store = self._traj_store()
            traj_ref = store.create(f"sweep-{slot.structure_id}")
            traj_writer = store.writer(traj_ref)
        try:
            result = strain_sweep(slot.atoms, slot.calc, amplitudes,
                                  mode=mode, axis=axis,
                                  forces=bool(req.get("forces", False)),
                                  fit=fit, energy_ref=energy_ref,
                                  traj_writer=traj_writer)
        finally:
            if traj_writer is not None:
                traj_writer.close()
        slot.evals += len(result.points)
        slot.refresh_accounting()
        extra = {"traj_ref": traj_ref} if traj_ref is not None else {}
        return protocol.ok_response(
            req, structure_id=slot.structure_id, worker=self.worker_id,
            warm=warm, **extra, **result.as_dict())

    def _op_relax_step(self, req: dict) -> dict:
        from repro.relax.base import energy_and_forces, max_force

        slot = self._slot(req)
        try:
            step_size = float(req.get("step_size", 0.05))
            max_step = float(req.get("max_step", 0.1))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"step_size/max_step must be numbers: {exc}") from exc
        if step_size <= 0 or max_step <= 0:
            raise ProtocolError("step_size and max_step must be > 0")
        undo = self._apply_geometry(slot, req)
        warm = slot.evals > 0
        try:
            energy, forces = energy_and_forces(slot.atoms, slot.calc)
        except ReproError:
            self._revert_geometry(slot, undo)
            raise
        slot.evals += 1
        import numpy as np

        disp = step_size * forces
        norms = np.linalg.norm(disp, axis=1)
        big = norms > max_step
        if big.any():
            disp[big] *= (max_step / norms[big])[:, None]
        slot.atoms.positions += disp
        slot.refresh_accounting()
        applied = float(np.minimum(norms, max_step).max(initial=0.0))
        return protocol.ok_response(
            req, structure_id=slot.structure_id, energy=energy,
            fmax=max_force(forces), max_disp=applied,
            positions=slot.atoms.positions.copy(), worker=self.worker_id,
            warm=warm)

"""Multi-structure batch service: resident calculator workers.

The scale-out layer over the per-calculator state reuse of
:mod:`repro.state`: a long-lived service keeps many structures'
calculators warm (sticky per-structure workers), coalesces concurrent
energy/force/relax-step requests into per-worker batches, and survives
worker crashes and memory-budget evictions by re-materializing
structures from snapshots.  ``repro.cli serve`` exposes it on a Unix
socket; :class:`BatchClient` drives it in process.

See ``docs/service.md`` for the protocol and an example session.
"""

from repro.service.batcher import CoalescingQueue
from repro.service.calculator import RemoteCalculator
from repro.service.client import BatchClient, SocketClient
from repro.service.server import UnixSocketServer
from repro.service.service import BatchService
from repro.service.worker import Worker, WorkerCrashError

__all__ = [
    "BatchClient",
    "BatchService",
    "CoalescingQueue",
    "RemoteCalculator",
    "SocketClient",
    "UnixSocketServer",
    "Worker",
    "WorkerCrashError",
]

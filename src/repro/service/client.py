"""Clients for the batch service: in-process and over the socket.

:class:`BatchClient` wraps a :class:`~repro.service.service.BatchService`
directly — no serialization, no threads — and is what the tests and the
throughput benchmark drive.  :class:`SocketClient` speaks the JSON-lines
protocol over a Unix socket to a running ``repro serve``.  Both expose
the same convenience surface (``load`` / ``evaluate`` / ``evaluate_many``
/ ``relax_step`` / ``stats`` / …), built on a single ``request`` /
``request_many`` primitive, so code written against one runs against the
other.

Responses are returned as :class:`~repro.service.protocol.Result`
envelopes (dict subclasses — flat key access like ``resp["energy"]``
falls through into the ``value`` payload, so pre-envelope call sites
keep working).  By default a ``{"ok": false}`` response is raised as
:class:`~repro.errors.ServiceError` carrying the failing op's name —
pass ``raise_on_error=False`` to inspect error envelopes instead.
"""

from __future__ import annotations

import itertools
import socket

import numpy as np

from repro.errors import ServiceError
from repro.service import protocol


class _ClientBase:
    """Shared convenience surface over ``request`` / ``request_many``."""

    raise_on_error = True

    def request(self, op: str, **fields) -> dict:
        return self.request_many([dict(fields, op=op)])[0]

    def request_many(self, requests: list[dict]) -> list[dict]:
        raise NotImplementedError  # pragma: no cover

    def _check(self, responses: list[dict]) -> list[protocol.Result]:
        out = [protocol.Result.from_response(r) for r in responses]
        if self.raise_on_error:
            for resp in out:
                if not resp.ok:
                    err = resp.error or {}
                    where = (f" during op {err['op']!r}"
                             if err.get("op") else "")
                    raise ServiceError(
                        f"service error [{err.get('type', '?')}]{where}: "
                        f"{err.get('message', 'unknown failure')}")
        return out

    # -- convenience ops ----------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def load(self, structure_id: str, atoms, calc: dict | None = None
             ) -> dict:
        """Register *atoms* under *structure_id* with a calculator spec."""
        return self.request("load", structure_id=structure_id,
                            structure=protocol.encode_atoms(atoms),
                            calc=calc or {})

    def evaluate(self, structure_id: str, positions=None, cell=None,
                 forces: bool = True) -> dict:
        """Energy (+forces) of a resident structure; *positions* / *cell*
        update it in place first (the state-reuse path)."""
        req: dict = {"structure_id": structure_id, "forces": forces}
        if positions is not None:
            req["positions"] = np.asarray(positions, dtype=float)
        if cell is not None:
            req["cell"] = np.asarray(cell, dtype=float)
        res = self.request("eval", **req)
        if forces and "forces" in res:
            res["forces"] = np.asarray(res["forces"], dtype=float)
        return res

    def evaluate_many(self, requests: list[dict]) -> list[dict]:
        """Batch of eval requests (dicts of ``evaluate`` keyword args).

        This is the throughput path: the whole list reaches the service
        as one batch and is fanned to the sticky workers together.
        """
        msgs = []
        for r in requests:
            msg = {"op": "eval", "structure_id": r["structure_id"],
                   "forces": r.get("forces", True)}
            if r.get("positions") is not None:
                msg["positions"] = np.asarray(r["positions"], dtype=float)
            if r.get("cell") is not None:
                msg["cell"] = np.asarray(r["cell"], dtype=float)
            msgs.append(msg)
        out = self.request_many(msgs)
        for res in out:
            if "forces" in res:
                res["forces"] = np.asarray(res["forces"], dtype=float)
        return out

    def relax_step(self, structure_id: str, step_size: float = 0.05,
                   max_step: float = 0.1) -> dict:
        res = self.request("relax_step", structure_id=structure_id,
                           step_size=step_size, max_step=max_step)
        res["positions"] = np.asarray(res["positions"], dtype=float)
        return res

    def sweep(self, structure_id: str, amplitudes=None,
              mode: str = "volumetric", axis: int = 2,
              fit: str | None = "birch", forces: bool = False,
              energy_ref: float = 0.0, amplitude: float = 0.04,
              npoints: int = 9, traj: bool = False) -> dict:
        """Server-side strain-sweep/EOS on a resident structure — one
        request for the whole E(ε) curve, evaluated by the calculator
        that already holds the warm state (see
        :func:`repro.analysis.strain_sweep.strain_sweep`).  With
        ``traj=True`` the strained geometries are recorded server-side
        and the response carries a ``traj_ref`` handle instead of frame
        payloads — fetch them lazily with :meth:`frames` /
        :meth:`iter_frames`."""
        req: dict = {"structure_id": structure_id, "mode": mode,
                     "axis": axis, "fit": fit, "forces": forces,
                     "energy_ref": energy_ref}
        if traj:
            req["traj"] = True
        if amplitudes is not None:
            req["amplitudes"] = [float(a) for a in amplitudes]
        else:
            req["amplitude"] = amplitude
            req["npoints"] = npoints
        return self.request("sweep", **req)

    def frames(self, traj_ref: str, start: int = 0,
               stop: int | None = None, stride: int = 1) -> dict:
        """Fetch a frame range from a server-side stored trajectory.

        Returns the ``frames`` op payload with ``positions`` / ``cell``
        / ``velocities`` of each frame normalised to numpy arrays.
        """
        req: dict = {"traj_ref": traj_ref, "start": start,
                     "stride": stride}
        if stop is not None:
            req["stop"] = stop
        res = self.request("frames", **req)
        for fr in res["frames"]:
            for key in ("positions", "cell", "velocities"):
                if key in fr:
                    fr[key] = np.asarray(fr[key], dtype=float)
        return res

    def iter_frames(self, traj_ref: str, batch: int = 64, stride: int = 1):
        """Lazily page through a stored trajectory, *batch* frames per
        ``frames`` request — the client never holds the full run."""
        start = 0
        while True:
            res = self.frames(traj_ref, start=start,
                              stop=start + batch * stride, stride=stride)
            yield from res["frames"]
            start += batch * stride
            if start >= int(res["total"]):
                return

    def unload(self, structure_id: str) -> dict:
        return self.request("unload", structure_id=structure_id)

    def list_structures(self) -> list[str]:
        return list(self.request("list")["structures"])

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def metrics(self) -> dict:
        """``stats`` plus the service-process :mod:`repro.obs` registry
        snapshot: ``{"stats": ..., "metrics": ...}``."""
        resp = self.request("metrics")
        return {"stats": resp["stats"], "metrics": resp["metrics"]}

    def shutdown(self) -> dict:
        return self.request("shutdown")


class BatchClient(_ClientBase):
    """In-process client: calls the service synchronously, no transport.

    The request dicts are handed to the service as-is (numpy arrays and
    all), which keeps the test/benchmark path free of serialization cost
    while exercising the identical service core as the socket path.
    """

    def __init__(self, service, raise_on_error: bool = True):
        self.service = service
        self.raise_on_error = bool(raise_on_error)
        self._ids = itertools.count(1)

    def request_many(self, requests: list[dict]) -> list[dict]:
        for req in requests:
            req.setdefault("id", next(self._ids))
        return self._check(self.service.submit_many(requests))


class SocketClient(_ClientBase):
    """JSON-lines client for a ``repro serve`` Unix socket.

    Not thread-safe: use one client per thread (each keeps its own
    request-id counter and receive buffer).
    """

    def __init__(self, socket_path: str, timeout: float = 300.0,
                 raise_on_error: bool = True):
        self.socket_path = str(socket_path)
        self.raise_on_error = bool(raise_on_error)
        self._ids = itertools.count(1)
        self._buf = b""
        self._pending: dict = {}
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(self.socket_path)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def request_many(self, requests: list[dict]) -> list[dict]:
        ids = []
        payload = b""
        for req in requests:
            req.setdefault("id", next(self._ids))
            ids.append(req["id"])
            payload += protocol.dumps(req)
        self._sock.sendall(payload)
        return self._check([self._recv_response(rid) for rid in ids])

    def _recv_response(self, rid) -> dict:
        if rid in self._pending:
            return self._pending.pop(rid)
        while True:
            while b"\n" in self._buf:
                line, self._buf = self._buf.split(b"\n", 1)
                if not line.strip():
                    continue
                resp = protocol.loads(line)
                if resp.get("id") == rid:
                    return resp
                self._pending[resp.get("id")] = resp
            try:
                chunk = self._sock.recv(1 << 16)
            except socket.timeout as exc:
                raise ServiceError(
                    f"timed out waiting for response {rid!r} from "
                    f"{self.socket_path}") from exc
            if not chunk:
                raise ServiceError(
                    f"server closed the connection before answering "
                    f"request {rid!r}")
            self._buf += chunk

"""The multi-structure batch service: sticky workers, batching, lifecycle.

:class:`BatchService` is the transport-independent core behind both the
Unix-socket server and the in-process :class:`~repro.service.client.BatchClient`.
It owns

* a **worker pool** (:class:`~repro.service.worker.Worker`) — each worker
  is the exclusive owner of a set of structures and their resident
  calculators, so per-structure state reuse needs no cross-worker
  coordination;
* a **sticky routing table** — a structure is assigned to the
  least-loaded worker at ``load`` and every later request for it goes to
  the same worker (the whole point: the calculator that has the warm
  Verlet lists / H pattern / regions / window / μ must be the one that
  answers);
* a **batcher** — :meth:`submit_many` coalesces concurrent requests into
  one ordered batch per worker and fans the per-worker batches through
  :func:`repro.parallel.pool.map_tasks` (inline for one worker, a shared
  thread executor for several — worker objects are not picklable, and
  the numerical kernels release the GIL inside BLAS);
* **lifecycle** — per-structure eviction under a memory budget (LRU on
  measured resident bytes, snapshot retained), worker crash recovery
  (crashed worker replaced, its structures lazily re-materialized from
  their :class:`~repro.state.StructureSnapshot`), graceful drain, and a
  ``stats`` endpoint (queue depth, reuse hit rate, p50/p99 latency).

Consistency guarantees:

* requests for one structure are totally ordered (sticky worker + one
  batch at a time per worker);
* a re-materialized structure answers exactly like a cold calculator —
  snapshots capture only client-visible state, never calculator caches.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ReproError, ServiceError
from repro.log import get_logger
from repro.parallel.pool import map_tasks
from repro.service import protocol
from repro.service.worker import Worker
from repro.state import StructureSnapshot
from repro.utils.timing import tick

log = get_logger(__name__)


@dataclass
class _StructureRecord:
    """Master-side bookkeeping for one registered structure."""

    structure_id: str
    worker_id: int
    snapshot: StructureSnapshot
    calc_spec: dict
    resident: bool = True
    evals: int = 0
    last_used: float = field(default_factory=time.monotonic)


class BatchService:
    """Transport-independent batch-evaluation service.

    Parameters
    ----------
    nworkers :
        Resident calculator workers.  Structures are spread over workers
        at ``load`` time and stay put (sticky routing).
    memory_budget_bytes :
        Soft cap on measured resident calculator state, enforced after
        every batch by LRU eviction (the most recently used structure is
        never evicted — a budget smaller than one structure must degrade
        to per-request re-materialization, not to an empty service).
        ``None`` disables eviction.
    pool_threads :
        Fan per-worker batches through a shared thread executor when
        > 1.  Defaults to ``min(nworkers, 4)``; 1 dispatches inline.
    debug_ops :
        Honour the ``debug_crash`` fault-injection op (tests only).
    traj_dir :
        Directory for the service's trajectory result store.  ``None``
        (the default) uses a temporary directory that lives as long as
        the service — refs then resolve only against this instance.
    """

    LATENCY_WINDOW = 4096

    def __init__(self, nworkers: int = 1,
                 memory_budget_bytes: int | None = None,
                 pool_threads: int | None = None,
                 debug_ops: bool = False,
                 traj_dir: str | None = None):
        if nworkers < 1:
            raise ServiceError("nworkers must be >= 1")
        self.debug_ops = bool(debug_ops)
        self.memory_budget_bytes = memory_budget_bytes
        self._traj_dir = traj_dir
        self._traj_store = None     # built on first use (most sessions
        self._traj_store_lock = threading.Lock()   # never produce one)
        self.workers: list[Worker] = [
            Worker(i, debug_ops=debug_ops, traj_store=self._get_traj_store)
            for i in range(nworkers)]
        self._worker_locks = [threading.RLock() for _ in range(nworkers)]
        self._registry_lock = threading.RLock()
        self._records: dict[str, _StructureRecord] = {}
        if pool_threads is None:
            pool_threads = min(nworkers, 4)
        self._executor = (ThreadPoolExecutor(max_workers=pool_threads)
                          if pool_threads > 1 else None)
        # bounded reservoir (ring buffer of the last LATENCY_WINDOW
        # observations + lifetime count/sum/min/max) — a long-lived
        # server's latency tracking has a hard memory ceiling
        self._latency_hist = obs.Histogram("service.request_ms",
                                           maxlen=self.LATENCY_WINDOW)
        self._queue_depth_fn = None     # set by the socket transport
        self._started = time.monotonic()
        self._draining = False
        self._counters = {
            "requests_total": 0, "errors_total": 0, "batches": 0,
            "batched_requests": 0, "max_batch": 0, "worker_crashes": 0,
            "evictions": 0, "rematerializations": 0,
            "warm_evals": 0, "cold_evals": 0,
        }

    # -- public API ---------------------------------------------------------
    def submit(self, request: dict) -> dict:
        """Handle one request synchronously (== a batch of one)."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: list[dict]) -> list[dict]:
        """Handle a batch of requests; responses align with *requests*.

        Requests touching different workers run concurrently (when the
        service has a thread pool); requests for one structure run in
        list order on its sticky worker.
        """
        t_submit = tick()
        responses: list[dict | None] = [None] * len(requests)
        per_worker: dict[int, list[tuple[int, dict]]] = {}

        for idx, req in enumerate(requests):
            try:
                req = protocol.validate_request(req)
                op = req["op"]
                if op in ("ping", "stats", "metrics", "list", "shutdown",
                          "frames"):
                    responses[idx] = self._service_op(req)
                    continue
                if op == "load":
                    # decode + snapshot the payload *before* routing —
                    # never inside the registry lock (a big structure
                    # must not stall every other client's routing)
                    req["_atoms"] = protocol.decode_atoms(
                        req.get("structure"))
                    req["_snapshot"] = StructureSnapshot.capture(
                        req["_atoms"])
                wid = self._route(req)
                per_worker.setdefault(wid, []).append((idx, req))
            except Exception as exc:
                responses[idx] = protocol.error_response(req, exc)

        if per_worker:
            batches = sorted(per_worker.items())
            with self._registry_lock:
                self._counters["batches"] += len(batches)
                self._counters["batched_requests"] += sum(
                    len(b) for _, b in batches)
                self._counters["max_batch"] = max(
                    self._counters["max_batch"],
                    max(len(b) for _, b in batches))
            for _, b in batches:
                obs.observe("service.batch_size", len(b))
            obs.counter_inc("service.batches", len(batches))
            results = map_tasks(self._run_worker_batch, batches,
                                nworkers=1, executor=self._executor)
            for batch_out in results:
                for idx, resp in batch_out:
                    responses[idx] = resp

        now = tick()
        n_errors = 0
        with self._registry_lock:
            self._counters["requests_total"] += len(requests)
            for req, resp in zip(requests, responses):
                if resp is not None and not resp.get("ok", False):
                    self._counters["errors_total"] += 1
                    n_errors += 1
                t0 = req.get("_t0", t_submit) if isinstance(req, dict) \
                    else t_submit
                self._latency_hist.observe(1e3 * (now - t0))
                if isinstance(req, dict) and "_t0" in req:
                    # transport-stamped arrival time → time spent queued
                    # and coalesced before the batch started executing
                    obs.observe("service.queue_wait_ms",
                                1e3 * (t_submit - req["_t0"]))
        obs.counter_inc("service.requests", len(requests))
        if n_errors:
            obs.counter_inc("service.errors", n_errors)
        self._enforce_memory_budget()
        return responses

    def drain(self) -> None:
        """Stop admitting new work and wait for in-flight batches."""
        self._draining = True
        for lock in self._worker_locks:
            with lock:
                pass

    def close(self) -> None:
        """Drain and release the dispatch thread pool."""
        self.drain()
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        with self._traj_store_lock:
            if self._traj_store is not None:
                self._traj_store.close()
                self._traj_store = None

    def _get_traj_store(self):
        """The service's :class:`~repro.trajio.store.TrajStore`, built on
        first use (shared by every worker and the ``frames`` op)."""
        with self._traj_store_lock:
            if self._traj_store is None:
                from repro.trajio.store import TrajStore
                self._traj_store = TrajStore(self._traj_dir)
            return self._traj_store

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- routing and service-level ops --------------------------------------
    def _route(self, req: dict) -> int:
        """Sticky worker id for a structure op (assigning on ``load``)."""
        sid = req["structure_id"]
        with self._registry_lock:
            if self._draining and req["op"] != "unload":
                raise ServiceError("service is draining; not accepting work")
            rec = self._records.get(sid)
            if req["op"] == "load":
                if rec is None:
                    counts = {i: 0 for i in range(len(self.workers))}
                    for r in self._records.values():
                        counts[r.worker_id] += 1
                    wid = min(counts, key=lambda i: (counts[i], i))
                    # provisional until the worker accepts the load —
                    # _bookkeep_success commits it, a failure removes it
                    rec = _StructureRecord(
                        structure_id=sid, worker_id=wid,
                        snapshot=req["_snapshot"],
                        calc_spec=dict(req.get("calc") or {}),
                        resident=False)
                    self._records[sid] = rec
                    req["_new_record"] = True
                # reload keeps the sticky assignment; snapshot and spec
                # are replaced only after the worker accepts the load
                return rec.worker_id
            if rec is None:
                raise ServiceError(
                    f"unknown structure {sid!r} — load it first")
            return rec.worker_id

    def _service_op(self, req: dict) -> dict:
        op = req["op"]
        if op == "ping":
            return protocol.ok_response(req, pong=True)
        if op == "list":
            with self._registry_lock:
                return protocol.ok_response(req, structures=sorted(
                    self._records))
        if op == "stats":
            return protocol.ok_response(req, stats=self.stats())
        if op == "metrics":
            # stats plus the full obs registry snapshot (summaries only —
            # raw reservoirs stay server-side); the always-on latency
            # histogram lives on the service, not the registry, so fold
            # its summary in alongside the registered instruments
            snap = obs.get_registry().snapshot(samples=False)
            snap.setdefault("histograms", {})[
                self._latency_hist.name] = self._latency_hist.summary()
            return protocol.ok_response(
                req, stats=self.stats(), metrics=snap)
        if op == "shutdown":
            # the transport watches for this and stops its loops; the
            # in-process client treats it as a drain request
            self._draining = True
            return protocol.ok_response(req, draining=True)
        if op == "frames":
            return self._frames_op(req)
        raise ServiceError(f"unhandled service op {op!r}")  # pragma: no cover

    def _frames_op(self, req: dict) -> dict:
        """Serve a frame range straight from the trajectory store.

        No worker is involved and nothing is re-materialized: the
        chunk index makes each range read O(frames requested), so a
        client can page through a huge stored run lazily.
        """
        from repro.trajio.reader import TrajectoryReader

        store = self._get_traj_store()
        ref = req["traj_ref"]
        try:
            path = store.path(ref)
        except KeyError:
            raise ServiceError(f"unknown traj_ref {ref!r}") from None
        start = int(req.get("start") or 0)
        stop = req.get("stop")
        raw_stride = req.get("stride")
        stride = 1 if raw_stride is None else int(raw_stride)
        if stride < 1:
            raise ServiceError(f"stride must be >= 1, got {stride}")
        with obs.span("service.frames") as sp, \
                TrajectoryReader(path) as reader:
            total = len(reader)
            if start < 0:
                start += total
            stop_ = total if stop is None else min(int(stop), total)
            frames = [protocol.encode_frame(f)
                      for f in reader.iter_frames(start, stop_, stride)]
            symbols = reader.symbols
            sp.set(ref=ref, frames=len(frames))
        obs.counter_inc("service.frames_served", len(frames))
        return protocol.ok_response(
            req, traj_ref=ref, total=total, start=start, stop=stop_,
            stride=stride, symbols=symbols, frames=frames)

    # -- worker batch execution ---------------------------------------------
    def _run_worker_batch(self, batch: tuple[int, list[tuple[int, dict]]]
                          ) -> list[tuple[int, dict]]:
        wid, items = batch
        out: list[tuple[int, dict]] = []
        with self._worker_locks[wid]:
            for idx, req in items:
                out.append((idx, self._run_one(wid, req)))
        return out

    def _run_one(self, wid: int, req: dict) -> dict:
        with obs.span("service.request") as sp:
            resp = self._run_one_impl(wid, req)
            sp.set(op=req.get("op"), structure=req.get("structure_id"),
                   worker=wid, ok=bool(resp.get("ok")))
            if "warm" in resp:
                sp.set(warm=bool(resp["warm"]))
        return resp

    def _run_one_impl(self, wid: int, req: dict) -> dict:
        worker = self.workers[wid]
        sid = req.get("structure_id")
        with self._registry_lock:
            rec = self._records.get(sid)
        try:
            if rec is not None and not rec.resident \
                    and req["op"] not in ("load", "unload"):
                # unload is excluded: rebuilding a calculator just to
                # discard it would be pure waste
                try:
                    self._rematerialize(worker, rec)
                except ReproError as exc:
                    # a calculator that cannot be rebuilt (e.g. model
                    # parameters went away) is this request's problem,
                    # not grounds to discard the whole worker
                    return protocol.error_response(req, ServiceError(
                        f"re-materializing structure "
                        f"{rec.structure_id!r} failed: {exc}"))
            resp = worker.handle(req)
        except Exception as exc:
            log.warning("worker %d crashed handling op %r on %r: %s: %s",
                        wid, req.get("op"), sid, type(exc).__name__, exc)
            self._handle_crash(wid, exc)
            resp = protocol.error_response(req, ServiceError(
                f"worker {wid} crashed handling this request "
                f"({type(exc).__name__}: {exc}); its structures will be "
                f"re-materialized from their last snapshots"))
        if resp.get("ok"):
            self._bookkeep_success(rec, req, resp)
        elif req["op"] == "load" and req.get("_new_record"):
            # a first load the worker rejected — or crashed on — must
            # not leave a registry entry behind; later requests still
            # answer "load it first"
            with self._registry_lock:
                self._records.pop(req["structure_id"], None)
        return resp

    def _bookkeep_success(self, rec: _StructureRecord | None, req: dict,
                          resp: dict) -> None:
        op = req["op"]
        with self._registry_lock:
            if rec is None:
                return
            if op == "unload":
                self._records.pop(rec.structure_id, None)
                return
            rec.last_used = time.monotonic()
            if op == "load":
                # the worker accepted the (re)load: commit snapshot + spec
                rec.snapshot = req["_snapshot"]
                rec.calc_spec = dict(req.get("calc") or {})
                rec.resident = True
                return
            rec.evals += 1
            if "warm" in resp:
                if resp["warm"]:
                    self._counters["warm_evals"] += 1
                    obs.counter_inc("service.warm_evals")
                else:
                    self._counters["cold_evals"] += 1
                    obs.counter_inc("service.cold_evals")
            # advance the snapshot to the client-visible geometry
            if op == "relax_step":
                rec.snapshot.update(positions=resp["positions"])
            else:
                pos = req.get("positions")
                cell = req.get("cell")
                if pos is not None or cell is not None:
                    rec.snapshot.update(positions=pos, cell=cell)

    def _rematerialize(self, worker: Worker, rec: _StructureRecord) -> None:
        """Bring an evicted / crash-lost structure back from its snapshot
        (a cold calculator — answers must match a fresh one exactly)."""
        atoms = rec.snapshot.materialize()
        worker.load_structure(rec.structure_id, atoms, rec.calc_spec)
        with self._registry_lock:
            rec.resident = True
            self._counters["rematerializations"] += 1
        obs.counter_inc("service.rematerializations")
        log.info("re-materialized structure %r on worker %d",
                 rec.structure_id, worker.worker_id)

    def _handle_crash(self, wid: int, exc: Exception) -> None:
        """Replace a crashed worker; its structures rebuild lazily."""
        with self._registry_lock:
            self.workers[wid] = Worker(wid, debug_ops=self.debug_ops,
                                       traj_store=self._get_traj_store)
            for rec in self._records.values():
                if rec.worker_id == wid:
                    rec.resident = False
            self._counters["worker_crashes"] += 1
        obs.counter_inc("service.worker_crashes")

    # -- eviction ------------------------------------------------------------
    def _enforce_memory_budget(self) -> None:
        if self.memory_budget_bytes is None:
            return
        with self._registry_lock:
            resident = [r for r in self._records.values() if r.resident]
            if len(resident) <= 1:
                return
            usage = self._resident_bytes()
            if usage <= self.memory_budget_bytes:
                return
            # LRU first; never evict the most recently used structure
            resident.sort(key=lambda r: r.last_used)
            victims = []
            for rec in resident[:-1]:
                if usage <= self.memory_budget_bytes:
                    break
                slot = self.workers[rec.worker_id].slots.get(
                    rec.structure_id)
                if slot is None:       # stale residency flag, nothing held
                    rec.resident = False
                    continue
                usage -= slot.bytes_estimate
                victims.append((rec, rec.last_used))
        for rec, seen_last_used in victims:
            # worker-then-registry, the same order the batch path uses
            with self._worker_locks[rec.worker_id], self._registry_lock:
                if not rec.resident or rec.last_used != seen_last_used:
                    continue   # touched since selection — spare it
                rec.resident = False
                evicted = self.workers[rec.worker_id].slots.pop(
                    rec.structure_id, None)
                if evicted is not None:
                    self._counters["evictions"] += 1
                    obs.counter_inc("service.evictions")
                    log.info("evicted structure %r from worker %d "
                             "(LRU, over memory budget)",
                             rec.structure_id, rec.worker_id)

    def _resident_bytes(self) -> int:
        return sum(w.resident_bytes_total() for w in self.workers)

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` endpoint payload (all plain-JSON values)."""
        with self._registry_lock:
            c = dict(self._counters)
            lat = self._latency_hist
            now = time.monotonic()
            structures = {}
            for sid, rec in sorted(self._records.items()):
                slot = self.workers[rec.worker_id].slots.get(sid)
                structures[sid] = {
                    "worker": rec.worker_id,
                    "resident": rec.resident,
                    "natoms": len(rec.snapshot.symbols),
                    "evals": rec.evals,
                    "idle_s": round(now - rec.last_used, 3),
                    "resident_bytes": (slot.bytes_estimate
                                       if slot is not None else 0),
                }
            evals = c["warm_evals"] + c["cold_evals"]
            batches = max(c["batches"], 1)
            return {
                "uptime_s": round(now - self._started, 3),
                "n_workers": len(self.workers),
                "draining": self._draining,
                "queue_depth": (self._queue_depth_fn()
                                if self._queue_depth_fn else 0),
                "requests_total": c["requests_total"],
                "errors_total": c["errors_total"],
                "batches": {"count": c["batches"],
                            "mean_size": round(
                                c["batched_requests"] / batches, 3),
                            "max_size": c["max_batch"]},
                "latency_ms": {
                    "count": int(lat.count),
                    "p50": (round(lat.percentile(50), 3)
                            if lat.count else None),
                    "p99": (round(lat.percentile(99), 3)
                            if lat.count else None),
                },
                "state_reuse": {
                    "warm_evals": c["warm_evals"],
                    "cold_evals": c["cold_evals"],
                    "hit_rate": (round(c["warm_evals"] / evals, 4)
                                 if evals else None),
                },
                "lifecycle": {
                    "worker_crashes": c["worker_crashes"],
                    "evictions": c["evictions"],
                    "rematerializations": c["rematerializations"],
                },
                "memory": {
                    "budget_bytes": self.memory_budget_bytes,
                    "resident_bytes": self._resident_bytes(),
                },
                "structures": structures,
            }

"""Command-line interface: energy, relaxation and MD from XYZ files.

A thin operational wrapper so downstream users can drive the engine
without writing Python::

    python -m repro.cli models
    python -m repro.cli energy  structure.xyz --model gsp-si
    python -m repro.cli energy  structure.xyz --solver linscale --r-loc 6 \
                                --kt 0.1 --order 200
    python -m repro.cli relax   structure.xyz --model xu-c --fmax 0.02 -o out.xyz
    python -m repro.cli md      structure.xyz --steps 500 --temperature 1000 \
                                --thermostat nose-hoover --traj run.xyz

``--solver`` picks the electronic engine: ``diag`` (exact, O(N³)),
``purification`` / ``foe`` (dense density-matrix kernels), or
``linscale`` — the O(N) Fermi-operator-in-localization-regions path.

Models: ``gsp-si``, ``xu-c``, ``harrison``, ``nonortho-si`` (tight
binding) and ``sw-si`` (classical Stillinger–Weber baseline).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError


def _make_calculator(name: str, kT: float, args=None):
    solver = getattr(args, "solver", "diag") if args is not None else "diag"
    if name == "sw-si":
        if solver != "diag":
            raise ReproError(
                "--solver applies to tight-binding models only (sw-si is "
                "classical)"
            )
        from repro.classical import StillingerWeber

        return StillingerWeber()
    from repro.tb import get_model

    model = get_model(name)
    if solver == "diag":
        from repro.tb import TBCalculator

        return TBCalculator(model, kT=kT)
    if solver == "purification":
        from repro.linscale import DensityMatrixCalculator

        # the constructor rejects kT != 0 with a clear message
        return DensityMatrixCalculator(model, method="purification", kT=kT)
    if kT <= 0.0:
        # the Fermi-operator solvers smear by construction
        kT = 0.1
        print(f"note: --solver {solver} needs kT > 0; using kT = {kT} eV")
    reuse = not getattr(args, "no_reuse", False)
    if solver == "foe":
        from repro.linscale import DensityMatrixCalculator

        return DensityMatrixCalculator(model, method="foe", kT=kT,
                                       order=args.order, reuse=reuse)
    if solver == "linscale":
        from repro.linscale import LinearScalingCalculator

        return LinearScalingCalculator(model, kT=kT, r_loc=args.r_loc,
                                       order=args.order,
                                       nworkers=args.nworkers,
                                       reuse=reuse)
    raise ReproError(f"unknown solver {solver!r}")  # pragma: no cover


def cmd_models(_args) -> int:
    print("tight-binding models: gsp-si, xu-c, harrison, nonortho-si")
    print("classical baselines : sw-si (Stillinger-Weber)")
    return 0


def cmd_energy(args) -> int:
    from repro.geometry import read_xyz

    atoms = read_xyz(args.structure)
    calc = _make_calculator(args.model, args.kt, args)
    res = calc.compute(atoms, forces=True)
    print(f"atoms            : {len(atoms)}")
    print(f"energy           : {res['energy']:.6f} eV "
          f"({res['energy'] / len(atoms):.6f} eV/atom)")
    if "gap" in res:
        print(f"HOMO-LUMO gap    : {res['gap']:.4f} eV")
    if "n_regions" in res:
        stats = res["region_stats"]
        print(f"O(N) regions     : {res['n_regions']} "
              f"(max {stats['atoms_max']} atoms), order {res['order']}, "
              f"r_loc {res['r_loc']:.2f} Å")
    import numpy as np

    print(f"max |force|      : {np.abs(res['forces']).max():.6f} eV/Å")
    if "pressure_gpa" in res:
        print(f"pressure         : {res['pressure_gpa']:.4f} GPa")
    return 0


def cmd_relax(args) -> int:
    from repro.geometry import read_xyz, write_xyz
    from repro.relax import conjugate_gradient, fire_relax, steepest_descent

    atoms = read_xyz(args.structure)
    calc = _make_calculator(args.model, args.kt, args)
    relaxer = {"cg": conjugate_gradient, "fire": fire_relax,
               "sd": steepest_descent}[args.method]
    res = relaxer(atoms, calc, fmax=args.fmax, max_steps=args.max_steps)
    print(res)
    if args.output:
        write_xyz(args.output, atoms,
                  comment=f"relaxed E={res.energy:.6f} fmax={res.fmax:.2e}")
        print(f"wrote {args.output}")
    return 0 if res.converged else 2


def cmd_md(args) -> int:
    from repro.geometry import read_xyz
    from repro.md import (
        LangevinDynamics, MDDriver, NoseHoover, NoseHooverChain, ThermoLog,
        VelocityVerlet, maxwell_boltzmann_velocities,
    )
    from repro.md.observers import ProgressPrinter, XYZWriter

    atoms = read_xyz(args.structure)
    calc = _make_calculator(args.model, args.kt, args)
    if args.temperature > 0:
        maxwell_boltzmann_velocities(atoms, args.temperature, seed=args.seed)
    if args.thermostat == "none":
        integ = VelocityVerlet(dt=args.dt)
    elif args.thermostat == "nose-hoover":
        integ = NoseHoover(dt=args.dt, temperature=args.temperature)
    elif args.thermostat == "nose-hoover-chain":
        integ = NoseHooverChain(dt=args.dt, temperature=args.temperature)
    elif args.thermostat == "langevin":
        integ = LangevinDynamics(dt=args.dt, temperature=args.temperature,
                                 seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown thermostat {args.thermostat}")

    log = ThermoLog()
    observers: list = [log, (ProgressPrinter(), max(1, args.steps // 20))]
    if args.traj:
        observers.append((XYZWriter(args.traj), args.traj_interval))
    md = MDDriver(atoms, calc, integ, observers=observers)
    md.run(args.steps)
    print(f"\nconserved-quantity drift: {log.conserved_drift():.3e}")
    if args.traj:
        print(f"trajectory written to {args.traj}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.cli",
        description="parallel tight-binding molecular dynamics (pytbmd)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models")

    def add_common(sp):
        sp.add_argument("structure", help="input (extended-)XYZ file")
        sp.add_argument("--model", default="gsp-si",
                        choices=["gsp-si", "xu-c", "harrison", "nonortho-si",
                                 "sw-si"])
        sp.add_argument("--kt", type=float, default=0.0,
                        help="electronic temperature (eV)")
        sp.add_argument("--solver", default="diag",
                        choices=["diag", "purification", "foe", "linscale"],
                        help="electronic solver: exact diagonalisation, "
                             "dense purification/FOE, or the O(N) "
                             "localization-region path")
        sp.add_argument("--r-loc", type=float, default=6.0, dest="r_loc",
                        help="localization radius in Å (linscale)")
        sp.add_argument("--order", type=int, default=200,
                        help="Chebyshev expansion order (foe/linscale)")
        sp.add_argument("--nworkers", type=int, default=1,
                        help="process-pool workers for region solves "
                             "(linscale)")
        sp.add_argument("--no-reuse", action="store_true", dest="no_reuse",
                        help="disable step-to-step state reuse (neighbor "
                             "lists, Hamiltonian pattern, regions, spectral "
                             "window, warm μ) in the foe/linscale solvers — "
                             "rebuild everything every step")

    pe = sub.add_parser("energy", help="single-point energy and forces")
    add_common(pe)

    pr = sub.add_parser("relax", help="structural relaxation")
    add_common(pr)
    pr.add_argument("--method", default="cg", choices=["cg", "fire", "sd"])
    pr.add_argument("--fmax", type=float, default=0.05)
    pr.add_argument("--max-steps", type=int, default=500)
    pr.add_argument("-o", "--output", help="write relaxed structure here")

    pm = sub.add_parser("md", help="molecular dynamics")
    add_common(pm)
    pm.add_argument("--steps", type=int, default=100)
    pm.add_argument("--dt", type=float, default=1.0)
    pm.add_argument("--temperature", type=float, default=300.0)
    pm.add_argument("--thermostat", default="none",
                    choices=["none", "nose-hoover", "nose-hoover-chain",
                             "langevin"])
    pm.add_argument("--seed", type=int, default=42)
    pm.add_argument("--traj", help="write trajectory XYZ here")
    pm.add_argument("--traj-interval", type=int, default=10)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "models": cmd_models,
        "energy": cmd_energy,
        "relax": cmd_relax,
        "md": cmd_md,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: energy, relaxation, MD and the batch service.

A thin operational wrapper so downstream users can drive the engine
without writing Python::

    python -m repro.cli models
    python -m repro.cli energy  structure.xyz --model gsp-si
    python -m repro.cli energy  structure.xyz --solver linscale --r-loc 6 \
                                --kt 0.1 --order 200
    python -m repro.cli energy  metal.xyz --solver linscale --kgrid 4x4x4 \
                                --kt 0.2 --order 300
    python -m repro.cli sweep   si8.xyz --kgrid 4x4x4 --kgrid-reduce symmetry \
                                --amplitude 0.06 --npoints 9 --fit birch
    python -m repro.cli relax   structure.xyz --model xu-c --fmax 0.02 -o out.xyz
    python -m repro.cli md      structure.xyz --steps 500 --temperature 1000 \
                                --thermostat nose-hoover --traj run.xyz
    python -m repro.cli campaign matrix.toml -o results.jsonl --sqlite results.sqlite
    python -m repro.cli campaign --quick
    python -m repro.cli serve   --socket /tmp/pytbmd.sock --workers 2
    python -m repro.cli client  --socket /tmp/pytbmd.sock load si.xyz --id si
    python -m repro.cli client  --socket /tmp/pytbmd.sock eval --id si

``--solver`` picks the electronic engine: ``diag`` (exact, O(N³)),
``purification`` / ``foe`` (dense density-matrix kernels), or
``linscale`` — the O(N) Fermi-operator-in-localization-regions path.
``--kgrid n1xn2xn3`` switches ``diag`` and ``linscale`` to Monkhorst–Pack
k sampling (energies *and* forces, so MD/relax work) — the small-cell
metal mode; ``--kgrid-reduce symmetry`` folds the crystal point group
into an irreducible wedge on top of the time-reversal reduction (see
docs/symmetry.md).  ``sweep`` walks a strain path with one warm
calculator and fits an equation of state (docs/symmetry.md has the
tutorial).

``campaign`` expands a TOML/JSON (structure × scenario × params) matrix
and runs every cell through the batch service into one queryable
JSONL/SQLite artifact (scenario registry, matrix format and artifact
schema: docs/campaigns.md).  ``serve`` starts the long-lived
multi-structure batch service (resident calculator workers, sticky
per-structure routing — see docs/service.md); ``client`` talks to a
running server over its Unix socket.

Observability (docs/observability.md): ``--trace out.jsonl`` records a
hierarchical span trace (``out.json`` → Chrome trace-event format for
Perfetto), ``--metrics out.json`` dumps the counter/histogram registry
at exit, and the global ``-v`` / ``--log-level`` flags route structured
diagnostics to stderr.  ``tools/trace_report.py`` turns a JSONL trace
into the SC'94-style phase/cache-efficiency table.

Models: ``gsp-si``, ``xu-c``, ``harrison``, ``nonortho-si`` (tight
binding) and ``sw-si`` (classical Stillinger–Weber baseline).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError


def _obs_begin(args) -> None:
    """Turn on tracing/metrics before a command runs (``--trace`` /
    ``--metrics``)."""
    if getattr(args, "trace", None):
        from repro import obs

        obs.enable_tracing()
        obs.enable_metrics()  # traces embed the metrics snapshot
    elif getattr(args, "metrics_out", None):
        from repro import obs

        obs.enable_metrics()


def _obs_finish(args) -> None:
    """Write trace/metrics files after a command (also on error, so a
    crashed run still leaves its telemetry behind)."""
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics_out", None)
    if not trace and not metrics:
        return
    from repro.obs.export import write_metrics_json, write_trace

    if trace:
        n = write_trace(trace)
        kind = "trace events" if str(trace).endswith(".json") else "spans"
        print(f"wrote {n} {kind} to {trace}", file=sys.stderr)
    if metrics:
        write_metrics_json(metrics)
        print(f"wrote metrics snapshot to {metrics}", file=sys.stderr)


def _calc_spec(args) -> dict:
    """Calculator spec dict from common CLI arguments.

    Only keys the parser actually provides are included — absent keys
    fall through to :func:`repro.calculators.make_calculator`'s own
    defaults, which stay the single source of truth.
    """
    spec = {"model": args.model, "kT": args.kt,
            "solver": getattr(args, "solver", "diag")}
    for key in ("order", "r_loc", "nworkers", "kgrid", "kgrid_reduce",
                "backend"):
        value = getattr(args, key, None)
        if value is not None:
            spec[key] = value
    if getattr(args, "no_reuse", False):
        spec["reuse"] = False
    return spec


def _make_calculator(name: str, kT: float, args=None):
    from repro.calculators import make_calculator

    spec = _calc_spec(args) if args is not None else {"model": name, "kT": kT}
    spec["model"], spec["kT"] = name, kT
    return make_calculator(spec)


def cmd_models(_args) -> int:
    print("tight-binding models: gsp-si, xu-c, harrison, nonortho-si")
    print("classical baselines : sw-si (Stillinger-Weber)")
    return 0


def cmd_energy(args) -> int:
    from repro.utils.timing import tick

    from repro.geometry import read_xyz

    atoms = read_xyz(args.structure)
    calc = _make_calculator(args.model, args.kt, args)
    t0 = tick()
    res = calc.compute(atoms, forces=True)
    seconds = tick() - t0
    print(f"atoms            : {len(atoms)}")
    print(f"energy           : {res['energy']:.6f} eV "
          f"({res['energy'] / len(atoms):.6f} eV/atom)")
    if "gap" in res:
        print(f"HOMO-LUMO gap    : {res['gap']:.4f} eV")
    if "n_regions" in res:
        stats = res["region_stats"]
        print(f"O(N) regions     : {res['n_regions']} "
              f"(max {stats['atoms_max']} atoms), order {res['order']}, "
              f"r_loc {res['r_loc']:.2f} Å")
    if "n_kpoints" in res:
        folding = {"trs": "time-reversal reduced", "full": "unreduced",
                   "symmetry": "point-group irreducible wedge"}[
            getattr(calc, "kgrid_reduce", "trs")]
        print(f"k-points         : {res['n_kpoints']} "
              f"(Monkhorst-Pack, {folding})")
    import numpy as np

    print(f"max |force|      : {np.abs(res['forces']).max():.6f} eV/Å")
    if "pressure_gpa" in res:
        print(f"pressure         : {res['pressure_gpa']:.4f} GPa")
    if args.json:
        value = {"natoms": len(atoms), "energy": res["energy"],
                 "free_energy": res.get("free_energy", res["energy"]),
                 "max_force": float(np.abs(res["forces"]).max())}
        for key in ("gap", "fermi_level", "pressure_gpa"):
            if key in res:
                value[key] = res[key]
        _result_json(args.json, value, timings={"seconds": seconds})
    return 0


def cmd_relax(args) -> int:
    from repro.geometry import read_xyz, write_xyz
    from repro.relax import conjugate_gradient, fire_relax, steepest_descent

    atoms = read_xyz(args.structure)
    calc = _make_calculator(args.model, args.kt, args)
    relaxer = {"cg": conjugate_gradient, "fire": fire_relax,
               "sd": steepest_descent}[args.method]
    res = relaxer(atoms, calc, fmax=args.fmax, max_steps=args.max_steps)
    print(res)
    if args.output:
        write_xyz(args.output, atoms,
                  comment=f"relaxed E={res.energy:.6f} fmax={res.fmax:.2e}")
        print(f"wrote {args.output}")
    return 0 if res.converged else 2


def cmd_md(args) -> int:
    from repro.geometry import read_xyz
    from repro.md import (
        LangevinDynamics, MDDriver, NoseHoover, NoseHooverChain, ThermoLog,
        VelocityVerlet, maxwell_boltzmann_velocities,
    )
    from repro.md.observers import (
        BinaryTrajectoryWriter, ProgressPrinter, XYZWriter,
    )

    atoms = read_xyz(args.structure)
    calc = _make_calculator(args.model, args.kt, args)
    if args.temperature > 0:
        maxwell_boltzmann_velocities(atoms, args.temperature, seed=args.seed)
    if args.thermostat == "none":
        integ = VelocityVerlet(dt=args.dt)
    elif args.thermostat == "nose-hoover":
        integ = NoseHoover(dt=args.dt, temperature=args.temperature)
    elif args.thermostat == "nose-hoover-chain":
        integ = NoseHooverChain(dt=args.dt, temperature=args.temperature)
    elif args.thermostat == "langevin":
        integ = LangevinDynamics(dt=args.dt, temperature=args.temperature,
                                 seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown thermostat {args.thermostat}")

    log = ThermoLog()
    observers: list = [log, (ProgressPrinter(), max(1, args.steps // 20))]
    traj_writer = None
    if args.traj:
        # .ptrj selects the chunked binary store (constant memory,
        # O(1) random access); anything else stays extended-XYZ text
        if str(args.traj).endswith(".ptrj"):
            traj_writer = BinaryTrajectoryWriter(args.traj)
            observers.append((traj_writer, args.traj_interval))
        else:
            observers.append((XYZWriter(args.traj), args.traj_interval))
    try:
        md = MDDriver(atoms, calc, integ, observers=observers)
        md.run(args.steps)
    finally:
        if traj_writer is not None:
            traj_writer.close()
    print(f"\nconserved-quantity drift: {log.conserved_drift():.3e}")
    if args.traj:
        print(f"trajectory written to {args.traj}")
    return 0


def cmd_sweep(args) -> int:
    from repro.utils.timing import tick

    from repro.analysis import strain_sweep, sweep_amplitudes
    from repro.geometry import read_xyz

    atoms = read_xyz(args.structure)
    calc = _make_calculator(args.model, args.kt, args)
    amplitudes = sweep_amplitudes(args.amplitude, args.npoints)
    fit = None if args.fit == "none" else args.fit
    traj_writer = None
    if getattr(args, "traj", None):
        from repro.trajio.writer import TrajectoryWriter

        traj_writer = TrajectoryWriter(args.traj)
    t0 = tick()
    try:
        res = strain_sweep(atoms, calc, amplitudes, mode=args.mode,
                           axis=args.axis, forces=args.forces, fit=fit,
                           energy_ref=args.eref, traj_writer=traj_writer)
    finally:
        if traj_writer is not None:
            traj_writer.close()
    seconds = tick() - t0
    if traj_writer is not None:
        print(f"strained geometries written to {args.traj}")
    print(f"{args.mode} strain sweep: {len(res.points)} points, "
          f"{res.natoms} atoms")
    header = f"{'ε':>9} {'V (Å³/at)':>11} {'E (eV/at)':>12}"
    if args.forces:
        header += f" {'max|F|':>10} {'P (GPa)':>10}"
    print(header)
    for p in res.points:
        line = f"{p.amplitude:9.4f} {p.volume:11.4f} {p.energy:12.6f}"
        if args.forces:
            line += (f" {p.max_force:10.4f}"
                     f" {p.pressure_gpa if p.pressure_gpa is not None else float('nan'):10.3f}")
        print(line)
    if res.eos is not None:
        print(f"{res.eos.form} fit  : V0 = {res.eos.v0:.4f} Å³/atom, "
              f"E0 = {res.eos.e0:.6f} eV/atom, "
              f"B0 = {res.eos.b0_gpa:.2f} GPa (B0' = {res.eos.b0_prime:.3f}, "
              f"rms {res.eos.residual:.2e})")
    rep = res.calc_report or {}
    foe = rep.get("foe")
    if foe:
        print(f"state reuse      : {foe['fused']} fused + "
              f"{foe['fallback']} fused-with-fallback / {foe['cold']} "
              f"two-pass solves, "
              f"{rep['hamiltonian']['pattern_builds']} pattern builds")
    if args.json:
        metrics = None
        if foe:
            metrics = {"fused": foe["fused"], "fallback": foe["fallback"],
                       "cold": foe["cold"]}
        _result_json(args.json, res.as_dict(),
                     timings={"seconds": seconds}, metrics=metrics)
    return 0


def _result_json(path, value, *, timings=None, metrics=None,
                 error=None) -> None:
    """Write a CLI command's ``--json`` output as the same
    :class:`~repro.service.protocol.Result` envelope the service
    speaks — one shape for every machine-readable payload (the
    campaign store ingests either source unchanged)."""
    from repro.service import protocol

    if error is not None:
        res = protocol.Result.failure(error)
    else:
        res = protocol.Result.success(value, timings=timings,
                                      metrics=metrics)
    with open(path, "wb") as fh:
        fh.write(protocol.dumps(res))
    print(f"wrote {path}")


def cmd_campaign(args) -> int:
    from repro.utils.timing import tick

    from repro import scenarios
    from repro.scenarios import store

    if args.list_scenarios:
        for name in scenarios.available_scenarios():
            sc = scenarios.get_scenario(name)
            print(f"{name:12s} [{', '.join(sc.tags)}] {sc.description}")
            for p in sc.describe_params():
                extra = (f" one of {p['choices']}" if p["choices"] else "")
                print(f"    {p['name']:18s} {p['type']:6s} "
                      f"default={p['default']!r}{extra}  {p['doc']}")
        return 0
    if args.matrix:
        spec = scenarios.load_campaign_spec(args.matrix)
    elif args.quick:
        spec = scenarios.CampaignSpec.from_dict(scenarios.QUICK_MATRIX)
    else:
        raise ReproError("campaign needs a matrix file (or --quick for "
                         "the built-in smoke matrix)")
    cells = scenarios.expand_matrix(spec)
    print(f"campaign {spec.name!r}: {len(cells)} cells "
          f"({len(spec.structures)} structures x "
          f"{len(spec.scenarios)} scenario entries)")
    t0 = tick()
    if args.socket:
        from repro.service import SocketClient

        with SocketClient(args.socket) as client:
            run = scenarios.run_campaign(spec, client=client,
                                         nworkers=args.nworkers, log=print,
                                         traj_dir=args.traj_dir)
    else:
        run = scenarios.run_campaign(spec, nworkers=args.nworkers,
                                     service_workers=args.service_workers,
                                     log=print, traj_dir=args.traj_dir)
    counts = run.counts
    print(f"{counts['ok']}/{counts['total']} cells ok"
          + (f", {counts['failed']} failed" if counts["failed"] else "")
          + f" in {tick() - t0:.2f}s")
    store.write_jsonl(args.output, run)
    print(f"wrote {args.output}")
    if args.sqlite:
        store.write_sqlite(args.sqlite, run)
        print(f"wrote {args.sqlite}")
    return 1 if (args.strict and counts["failed"]) else 0


def cmd_serve(args) -> int:
    from repro.service import BatchService, UnixSocketServer

    budget = None
    if args.memory_budget_mb is not None:
        budget = int(args.memory_budget_mb * 1024 * 1024)
    service = BatchService(nworkers=args.workers,
                           memory_budget_bytes=budget,
                           debug_ops=args.debug_ops)
    server = UnixSocketServer(service, args.socket,
                              batch_window_s=args.batch_window_ms / 1e3,
                              max_batch=args.max_batch)
    server.start()
    print(f"batch service listening on {args.socket} "
          f"({args.workers} worker{'s' if args.workers != 1 else ''}"
          f"{', debug ops ON' if args.debug_ops else ''})")
    print("stop with Ctrl-C or a client 'shutdown' request")
    server.serve_forever()
    print("drained and stopped")
    return 0


def cmd_client(args) -> int:
    from repro.service import SocketClient

    with SocketClient(args.socket) as client:
        action = args.action
        if action == "ping":
            print("pong" if client.ping() else "no pong")
            return 0
        if action == "load":
            from repro.geometry import read_xyz

            atoms = read_xyz(args.structure)
            resp = client.load(args.id, atoms, calc=_calc_spec(args))
            print(f"loaded {resp['structure_id']} ({resp['natoms']} atoms) "
                  f"on worker {resp['worker']} [{resp['calculator']}]")
            return 0
        if action == "eval":
            positions = None
            if args.positions_from:
                from repro.geometry import read_xyz

                positions = read_xyz(args.positions_from).positions
            resp = client.evaluate(args.id, positions=positions,
                                   forces=args.forces)
            print(f"energy           : {resp['energy']:.6f} eV "
                  f"({resp['energy'] / resp['natoms']:.6f} eV/atom)")
            print(f"state reuse      : {'warm' if resp['warm'] else 'cold'} "
                  f"(worker {resp['worker']})")
            if args.forces:
                import numpy as np

                print(f"max |force|      : "
                      f"{np.abs(resp['forces']).max():.6f} eV/Å")
            return 0
        if action == "relax-step":
            resp = client.relax_step(args.id, step_size=args.step_size,
                                     max_step=args.max_step)
            print(f"energy {resp['energy']:.6f} eV, "
                  f"fmax {resp['fmax']:.4f} eV/Å, "
                  f"max displacement {resp['max_disp']:.4f} Å")
            return 0
        if action == "unload":
            client.unload(args.id)
            print(f"unloaded {args.id}")
            return 0
        if action == "list":
            for sid in client.list_structures():
                print(sid)
            return 0
        if action == "stats":
            print(json.dumps(client.stats(), indent=2))
            return 0
        if action == "metrics":
            print(json.dumps(client.metrics(), indent=2))
            return 0
        if action == "shutdown":
            client.shutdown()
            print("server draining")
            return 0
    raise ReproError(f"unknown client action {args.action!r}")  # pragma: no cover


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.cli",
        description="parallel tight-binding molecular dynamics (pytbmd)")
    p.add_argument("--log-level", default=None,
                   choices=["debug", "info", "warning", "error"],
                   help="diagnostic logging threshold (stderr)")
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="increase log verbosity (-v info, -vv debug)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models")

    def add_common(sp):
        sp.add_argument("structure", help="input (extended-)XYZ file")
        sp.add_argument("--model", default="gsp-si",
                        choices=["gsp-si", "xu-c", "harrison", "nonortho-si",
                                 "sw-si"])
        sp.add_argument("--kt", type=float, default=0.0,
                        help="electronic temperature (eV)")
        sp.add_argument("--solver", default="diag",
                        choices=["diag", "purification", "foe", "linscale"],
                        help="electronic solver: exact diagonalisation, "
                             "dense purification/FOE, or the O(N) "
                             "localization-region path")
        sp.add_argument("--r-loc", type=float, default=6.0, dest="r_loc",
                        help="localization radius in Å (linscale)")
        sp.add_argument("--order", type=int, default=200,
                        help="Chebyshev expansion order (foe/linscale)")
        sp.add_argument("--nworkers", type=int, default=1,
                        help="process-pool workers for region solves "
                             "(linscale)")
        sp.add_argument("--kgrid", default=None, metavar="n1xn2xn3",
                        help="Monkhorst-Pack k grid (e.g. 4x4x4, or one "
                             "int for isotropic). Small-cell metals via "
                             "diag or linscale; default Γ-only")
        sp.add_argument("--kgrid-reduce", default=None,
                        choices=["trs", "full", "symmetry"],
                        dest="kgrid_reduce",
                        help="k-grid folding: time-reversal only (trs, "
                             "default), none (full), or the crystal "
                             "point-group irreducible wedge (symmetry) — "
                             "up to ~16x fewer k points on cubic cells")
        sp.add_argument("--backend", default=None,
                        help="array backend for the linscale region "
                             "recursions (numpy_loop, numpy_batched, ...); "
                             "default: $REPRO_BACKEND, then numpy_loop")
        sp.add_argument("--trace", metavar="PATH",
                        help="record a span trace of the run: *.jsonl for "
                             "tools/trace_report.py, *.json for the Chrome "
                             "trace-event format (open in Perfetto)")
        sp.add_argument("--metrics", metavar="PATH", dest="metrics_out",
                        help="write the repro.obs metrics snapshot (cache "
                             "hit rates, phase timings, ...) as JSON at "
                             "exit")
        sp.add_argument("--no-reuse", action="store_true", dest="no_reuse",
                        help="disable step-to-step state reuse (neighbor "
                             "lists, Hamiltonian pattern, regions, spectral "
                             "window, warm μ) in the foe/linscale solvers — "
                             "rebuild everything every step")

    pe = sub.add_parser("energy", help="single-point energy and forces")
    add_common(pe)
    pe.add_argument("--json",
                    help="write the result as a Result-envelope JSON file")

    pr = sub.add_parser("relax", help="structural relaxation")
    add_common(pr)
    pr.add_argument("--method", default="cg", choices=["cg", "fire", "sd"])
    pr.add_argument("--fmax", type=float, default=0.05)
    pr.add_argument("--max-steps", type=int, default=500)
    pr.add_argument("-o", "--output", help="write relaxed structure here")

    pm = sub.add_parser("md", help="molecular dynamics")
    add_common(pm)
    pm.add_argument("--steps", type=int, default=100)
    pm.add_argument("--dt", type=float, default=1.0)
    pm.add_argument("--temperature", type=float, default=300.0)
    pm.add_argument("--thermostat", default="none",
                    choices=["none", "nose-hoover", "nose-hoover-chain",
                             "langevin"])
    pm.add_argument("--seed", type=int, default=42)
    pm.add_argument("--traj",
                    help="write the trajectory here (a .ptrj suffix "
                         "selects the chunked binary format, anything "
                         "else extended-XYZ text)")
    pm.add_argument("--traj-interval", type=int, default=10)

    pw = sub.add_parser(
        "sweep", help="strain sweep / equation-of-state fit")
    add_common(pw)
    pw.add_argument("--mode", default="volumetric",
                    choices=["volumetric", "uniaxial", "shear"],
                    help="strain path (volumetric fits an EOS by default)")
    pw.add_argument("--axis", type=int, default=2, choices=[0, 1, 2],
                    help="strained axis (uniaxial/shear)")
    pw.add_argument("--amplitude", type=float, default=0.04,
                    help="max |strain| of the path (linear, not volume)")
    pw.add_argument("--npoints", type=int, default=9,
                    help="strain points across ±amplitude")
    pw.add_argument("--fit", default="birch",
                    choices=["birch", "murnaghan", "none"],
                    help="EOS form fitted to E(V)")
    pw.add_argument("--eref", type=float, default=0.0,
                    help="per-atom energy reference subtracted before "
                         "the fit (free-atom reference → cohesive energy)")
    pw.add_argument("--forces", action="store_true",
                    help="also compute forces and pressure per point")
    pw.add_argument("--json", help="write points + fit as a "
                                   "Result-envelope JSON file")
    pw.add_argument("--traj", metavar="PATH",
                    help="record every strained geometry into a binary "
                         ".ptrj trajectory")

    pca = sub.add_parser(
        "campaign",
        help="expand and run a (structure x scenario x params) matrix")
    pca.add_argument("matrix", nargs="?",
                     help="TOML or JSON campaign matrix (docs/campaigns.md)")
    pca.add_argument("--quick", action="store_true",
                     help="run the built-in 2-structure x 2-scenario "
                          "smoke matrix (no matrix file needed)")
    pca.add_argument("-o", "--output", default="campaign.jsonl",
                     help="JSONL artifact path (default campaign.jsonl)")
    pca.add_argument("--sqlite", metavar="PATH",
                     help="also write/append a SQLite artifact")
    pca.add_argument("--nworkers", type=int, default=1,
                     help="campaign-level cell fan-out (thread pool over "
                          "the batch service)")
    pca.add_argument("--service-workers", type=int, default=2,
                     dest="service_workers",
                     help="resident workers of the private in-process "
                          "service (ignored with --socket)")
    pca.add_argument("--socket", default=None,
                     help="run against a live 'repro.cli serve' server "
                          "instead of a private in-process service")
    pca.add_argument("--traj-dir", default=None, dest="traj_dir",
                     metavar="DIR",
                     help="persist scenario trajectories as .ptrj files "
                          "here; rows then carry a traj_ref (see "
                          "repro.scenarios.store.resolve_traj_ref)")
    pca.add_argument("--strict", action="store_true",
                     help="exit 1 if any cell failed (default: failures "
                          "are recorded in the artifact, exit 0)")
    pca.add_argument("--list-scenarios", action="store_true",
                     dest="list_scenarios",
                     help="list registered scenarios and their parameter "
                          "schemas, then exit")
    pca.add_argument("--trace", metavar="PATH",
                     help="record a span trace of the campaign (*.jsonl "
                          "or *.json for Perfetto)")
    pca.add_argument("--metrics", metavar="PATH", dest="metrics_out",
                     help="write the repro.obs metrics snapshot as JSON "
                          "at exit")

    ps = sub.add_parser(
        "serve", help="run the multi-structure batch service")
    ps.add_argument("--socket", default="/tmp/pytbmd.sock",
                    help="Unix socket path to listen on")
    ps.add_argument("--workers", type=int, default=1,
                    help="resident calculator workers (structures are "
                         "sticky-routed across them)")
    ps.add_argument("--memory-budget-mb", type=float, default=None,
                    help="evict least-recently-used calculator state "
                         "beyond this budget (MB); default unlimited")
    ps.add_argument("--batch-window-ms", type=float, default=2.0,
                    help="request-coalescing window")
    ps.add_argument("--max-batch", type=int, default=64,
                    help="cap on one coalesced batch")
    ps.add_argument("--debug-ops", action="store_true",
                    help="honour debug_crash fault injection (tests)")
    ps.add_argument("--trace", metavar="PATH",
                    help="record a span trace of every request handled "
                         "until shutdown: *.jsonl or *.json (Perfetto)")
    ps.add_argument("--metrics", metavar="PATH", dest="metrics_out",
                    help="write the service-process metrics snapshot as "
                         "JSON when the server drains (the live registry "
                         "is available any time via the 'metrics' op)")

    pc = sub.add_parser("client", help="talk to a running batch service")
    pc.add_argument("--socket", default="/tmp/pytbmd.sock")
    ca = pc.add_subparsers(dest="action", required=True)
    cl = ca.add_parser("load", help="register a structure")
    cl.add_argument("structure", help="input (extended-)XYZ file")
    cl.add_argument("--id", required=True, help="structure id")
    cl.add_argument("--model", default="gsp-si",
                    choices=["gsp-si", "xu-c", "harrison", "nonortho-si",
                             "sw-si"])
    cl.add_argument("--solver", default="diag",
                    choices=["diag", "purification", "foe", "linscale"])
    cl.add_argument("--kt", type=float, default=0.0)
    cl.add_argument("--order", type=int, default=200)
    cl.add_argument("--r-loc", type=float, default=6.0, dest="r_loc")
    cl.add_argument("--kgrid", default=None, metavar="n1xn2xn3",
                    help="Monkhorst-Pack k grid (diag/linscale)")
    cl.add_argument("--kgrid-reduce", default=None,
                    choices=["trs", "full", "symmetry"],
                    dest="kgrid_reduce",
                    help="k-grid folding mode (see the energy command)")
    cl.add_argument("--backend", default=None,
                    help="array backend for linscale region recursions "
                         "(see the energy command)")
    ce = ca.add_parser("eval", help="energy/forces of a loaded structure")
    ce.add_argument("--id", required=True)
    ce.add_argument("--forces", action="store_true")
    ce.add_argument("--positions-from",
                    help="XYZ file whose positions update the resident "
                         "structure before evaluating")
    cr = ca.add_parser("relax-step", help="one damped descent step")
    cr.add_argument("--id", required=True)
    cr.add_argument("--step-size", type=float, default=0.05)
    cr.add_argument("--max-step", type=float, default=0.1)
    cu = ca.add_parser("unload", help="drop a structure")
    cu.add_argument("--id", required=True)
    ca.add_parser("list", help="list loaded structure ids")
    ca.add_parser("stats", help="service statistics (JSON)")
    ca.add_parser("metrics",
                  help="stats plus the server's obs metrics registry (JSON)")
    ca.add_parser("ping", help="liveness probe")
    ca.add_parser("shutdown", help="drain and stop the server")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None or args.verbose:
        from repro.log import (
            level_from_verbosity, parse_level, setup_logging,
        )

        level = (parse_level(args.log_level) if args.log_level is not None
                 else level_from_verbosity(args.verbose))
        setup_logging(level)
    handler = {
        "models": cmd_models,
        "energy": cmd_energy,
        "relax": cmd_relax,
        "md": cmd_md,
        "sweep": cmd_sweep,
        "campaign": cmd_campaign,
        "serve": cmd_serve,
        "client": cmd_client,
    }[args.command]
    _obs_begin(args)
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        _obs_finish(args)


if __name__ == "__main__":
    raise SystemExit(main())

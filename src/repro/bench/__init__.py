"""Benchmark support: workload generators and reporting."""

from repro.bench.workloads import (
    liquid_silicon_workload,
    nanotube_workload,
    silicon_supercell,
    sizes_table,
)
from repro.bench.reporting import print_table, series_rows

__all__ = [
    "silicon_supercell",
    "liquid_silicon_workload",
    "nanotube_workload",
    "sizes_table",
    "print_table",
    "series_rows",
]

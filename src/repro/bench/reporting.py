"""Benchmark output helpers: consistent table/series printing."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.utils.tables import Table


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[Any]], float_fmt="{:.4g}") -> str:
    """Render and print a benchmark table; returns the rendered string."""
    t = Table(headers, title=f"== {title} ==", float_fmt=float_fmt)
    for row in rows:
        t.add_row(row)
    text = t.render()
    print("\n" + text)
    return text


def series_rows(xs, ys) -> list[list]:
    """Zip two sequences into table rows."""
    return [[x, y] for x, y in zip(xs, ys)]

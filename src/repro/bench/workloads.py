"""Benchmark workload generators.

Deterministic (seeded) builders for the structures the T/F benchmarks
sweep over, so every run regenerates identical inputs.
"""

from __future__ import annotations


from repro.geometry import bulk_silicon, nanotube, rattle, supercell
from repro.geometry.nanostructures import hydrogen_cap


def silicon_supercell(multiplier: int, rattle_amp: float = 0.0,
                      seed: int = 0):
    """n×n×n diamond-Si supercell (8·n³ atoms), optionally rattled."""
    at = supercell(bulk_silicon(), multiplier)
    if rattle_amp > 0:
        at = rattle(at, rattle_amp, seed=seed)
    return at


def sizes_table(multipliers=(1, 2, 3, 4)) -> list[tuple[int, int]]:
    """(multiplier, natoms) rows for the T1 size sweep."""
    return [(m, 8 * m**3) for m in multipliers]


def liquid_silicon_workload(multiplier: int = 2, temperature: float = 3000.0,
                            seed: int = 11):
    """A hot, strongly rattled Si supercell used as a liquid proxy seed.

    The F7 bench melts it properly with NVT MD; this function only
    prepares the decorrelated starting state.
    """
    from repro.md import maxwell_boltzmann_velocities

    at = silicon_supercell(multiplier, rattle_amp=0.25, seed=seed)
    maxwell_boltzmann_velocities(at, temperature, seed=seed)
    return at


def nanotube_workload(n: int = 10, m: int = 0, cells: int = 3,
                      capped: bool = True):
    """Finite open (n, m) nanotube, optionally H-capped at the bottom end
    with frozen hydrogens — the application-class workload (F8)."""
    tube = nanotube(n, m, cells=cells, periodic=False)
    if capped:
        tube = hydrogen_cap(tube, end="bottom")
    return tube

"""Temperature-ramp protocols.

The classic nanotube-closure simulations heat between plateaus at a fixed
thermostat rate (0.5 K/fs), equilibrate ~1 ps at the new setpoint, then
sample.  :class:`TemperatureRamp` drives any thermostat with a mutable
``target_temperature``; :func:`anneal_protocol` chains ramp → equilibrate
→ sample stages across a temperature ladder.
"""

from __future__ import annotations

from repro.errors import MDError


class TemperatureRamp:
    """Observer that linearly ramps ``integrator.target_temperature``.

    Parameters
    ----------
    integrator :
        Any thermostat with a ``target_temperature`` attribute.
    t_final :
        Destination temperature (K).
    rate :
        Heating rate in K/fs (positive; the sign of the ramp is inferred).
    """

    def __init__(self, integrator, t_final: float, rate: float = 0.5):
        if rate <= 0:
            raise MDError("ramp rate must be > 0 K/fs")
        if not hasattr(integrator, "target_temperature"):
            raise MDError("integrator has no target_temperature to ramp")
        self.integrator = integrator
        self.t_final = float(t_final)
        self.rate = float(rate)

    @property
    def done(self) -> bool:
        return self.integrator.target_temperature == self.t_final

    def steps_remaining(self) -> int:
        dt = self.integrator.dt
        span = abs(self.t_final - self.integrator.target_temperature)
        return int(span / (self.rate * dt) + 0.999999)

    def __call__(self, step, atoms, data) -> None:
        t_now = self.integrator.target_temperature
        if t_now == self.t_final:
            return
        delta = self.rate * self.integrator.dt
        if t_now < self.t_final:
            self.integrator.target_temperature = min(self.t_final, t_now + delta)
        else:
            self.integrator.target_temperature = max(self.t_final, t_now - delta)


def anneal_protocol(driver, temperatures, hold_steps: int,
                    equilibrate_steps: int = 1000, rate: float = 0.5,
                    stage_callback=None) -> list[dict]:
    """Run the ladder protocol: for each T, ramp → equilibrate → hold.

    Parameters
    ----------
    driver :
        An :class:`~repro.md.driver.MDDriver` whose integrator is a
        thermostat.
    temperatures :
        Ladder of setpoints (K), e.g. ``[1000, 2000, 2500, 3000]``.
    hold_steps :
        Production steps at each plateau.
    equilibrate_steps :
        Steps after reaching each setpoint before production (the "1 ps"
        of the classic protocol at dt = 1 fs).
    rate :
        Ramp rate in K/fs (classic protocol: 0.5).
    stage_callback :
        Optional ``f(stage_name, temperature, data)`` notifier.

    Returns
    -------
    One summary dict per plateau with the last step's record.
    """
    integ = driver.integrator
    if not hasattr(integ, "target_temperature"):
        raise MDError("anneal_protocol needs an NVT integrator")
    summaries = []
    for t_target in temperatures:
        ramp = TemperatureRamp(integ, t_final=float(t_target), rate=rate)
        driver.add_observer(ramp)
        driver.run(ramp.steps_remaining())
        driver.observers = [(o, i) for (o, i) in driver.observers if o is not ramp]
        integ.target_temperature = float(t_target)
        data = driver.run(equilibrate_steps)
        if stage_callback:
            stage_callback("equilibrated", t_target, data)
        data = driver.run(hold_steps)
        if stage_callback:
            stage_callback("sampled", t_target, data)
        summaries.append({
            "setpoint": float(t_target),
            **{k: data[k] for k in ("step", "time_fs", "epot", "ekin",
                                    "temperature", "conserved")},
        })
    return summaries

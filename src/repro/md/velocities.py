"""Maxwell–Boltzmann velocity initialisation."""

from __future__ import annotations

import numpy as np

from repro.errors import MDError
from repro.units import FORCE_TO_ACC, KB
from repro.utils.rng import default_rng


def maxwell_boltzmann_velocities(atoms, temperature: float, seed=None,
                                 zero_momentum: bool = True,
                                 exact: bool = True) -> None:
    """Draw velocities for the free atoms at *temperature* (K), in place.

    Equipartition in internal units: ``⟨v_α²⟩ = k_B T · FORCE_TO_ACC / m``.

    Parameters
    ----------
    zero_momentum :
        Remove centre-of-mass drift of the free atoms after drawing.
    exact :
        Rescale so the instantaneous kinetic temperature equals
        *temperature* exactly (after momentum removal), the convention MD
        codes use so the first thermostat step starts on target.
    """
    if temperature < 0:
        raise MDError("temperature must be >= 0")
    rng = default_rng(seed)
    free = ~atoms.fixed
    nfree = int(free.sum())
    if nfree == 0:
        raise MDError("no free atoms to thermalise")
    atoms.velocities[...] = 0.0
    if temperature == 0:
        return
    sigma = np.sqrt(KB * temperature * FORCE_TO_ACC / atoms.masses[free])
    atoms.velocities[free] = rng.normal(size=(nfree, 3)) * sigma[:, None]
    if zero_momentum:
        atoms.zero_momentum()
    if exact:
        t_now = atoms.temperature()
        if t_now > 0:
            atoms.velocities[free] *= np.sqrt(temperature / t_now)

"""The MD driver loop: integrator + calculator + observers.

The driver owns no physics — it initialises the integrator, steps it, and
fans out a per-step data record to observers.  Observer signature:
``observer(step, atoms, data)`` with ``data`` containing at least
``epot``, ``ekin``, ``etot``, ``temperature``, ``conserved``, ``time_fs``
(energies in eV, temperature in K, time in fs).

The driver is also where the MD fast path pays off: calculators keep
persistent step-to-step state (Verlet skin lists, Hamiltonian patterns,
localization regions, the chemical potential — see
:mod:`repro.state`), and because the driver evolves ``atoms`` in place
and asks for energy *and* forces in one ``compute`` per step, every
consecutive step is a positions-only change that the calculators absorb
incrementally.  When the calculator exposes ``state_report()`` (all
pytbmd calculators do), each data record carries it under
``data["calc_report"]`` so observers and post-run analysis can audit
rebuild-vs-reuse behaviour.
"""

from __future__ import annotations

import numpy as np

from repro import obs as _obs
from repro.errors import MDError
from repro.utils.timing import tick


class MDDriver:
    """Run molecular dynamics.

    Parameters
    ----------
    atoms :
        Structure evolved **in place**.
    calc :
        A :class:`~repro.tb.calculator.TBCalculator` (or any object with a
        compatible ``compute``).
    integrator :
        A :class:`~repro.md.verlet.Integrator`.
    observers :
        Iterable of ``(observer, interval)`` pairs or bare observers
        (interval 1).
    blowup_temperature :
        Abort threshold (K): an exploding trajectory (bad dt, overlapping
        atoms) fails fast with a clear message instead of NaN-ing through
        the eigensolver.
    """

    def __init__(self, atoms, calc, integrator, observers=(),
                 blowup_temperature: float = 1.0e6):
        self.atoms = atoms
        self.calc = calc
        self.integrator = integrator
        self.observers: list[tuple] = []
        for obs in observers:
            if isinstance(obs, tuple):
                self.add_observer(*obs)
            else:
                self.add_observer(obs)
        self.blowup_temperature = float(blowup_temperature)
        self.step_count = 0
        self._initialized = False

    def add_observer(self, observer, interval: int = 1) -> None:
        if interval < 1:
            raise MDError("observer interval must be >= 1")
        self.observers.append((observer, int(interval)))

    # -- main loop ---------------------------------------------------------------
    def run(self, nsteps: int) -> dict:
        """Advance the trajectory by *nsteps* integrator steps.

        The first call initialises the integrator (one extra force
        evaluation) and emits a step-0 snapshot to the observers; calls
        compose, so ``run(5); run(5)`` equals ``run(10)``.

        Returns
        -------
        dict — the last step's data record: ``step``, ``time_fs`` (fs),
        ``epot`` / ``ekin`` / ``etot`` / ``conserved`` (eV),
        ``temperature`` (K), ``results`` (the calculator's full results
        dict) and ``calc_report`` (rebuild-vs-reuse diagnostics) when
        the calculator provides one.  Stepped records additionally carry
        ``step_seconds`` (wall time of the step) and — when the
        calculator has a :class:`~repro.utils.timing.PhaseTimer` —
        ``phase_seconds``, this step's per-phase increment.
        """
        if nsteps < 0:
            raise MDError("nsteps must be >= 0")
        if not self._initialized:
            res = self.integrator.initialize(self.atoms, self.calc)
            self._initialized = True
            data = self._record(res)
            self._notify(data)   # step 0 snapshot
        data = None
        for _ in range(nsteps):
            t0 = tick()
            phases_before = self._phase_totals()
            with _obs.span("md.step") as sp:
                res = self.integrator.step(self.atoms, self.calc)
                sp.set(step=self.step_count + 1)
            self.step_count += 1
            data = self._record(res)
            data["step_seconds"] = tick() - t0
            _obs.observe("md.step_s", data["step_seconds"])
            if phases_before is not None:
                # per-step phase breakdown: this step's increment of the
                # calculator's cumulative phase timers (the SC'94 table,
                # step by step)
                after = self._phase_totals()
                data["phase_seconds"] = {
                    k: after[k] - phases_before.get(k, 0.0) for k in after}
            if data["temperature"] > self.blowup_temperature or \
                    not np.isfinite(data["etot"]):
                raise MDError(
                    f"trajectory blew up at step {self.step_count}: "
                    f"T = {data['temperature']:.3g} K, "
                    f"E = {data['etot']:.6g} eV — reduce dt or fix overlaps"
                )
            self._notify(data)
        return data if data is not None else self._record(
            self.calc.compute(self.atoms, forces=True))

    def _phase_totals(self) -> dict | None:
        """Cumulative per-phase seconds from the calculator's PhaseTimer
        (None when the calculator carries no timer)."""
        timer = getattr(self.calc, "timer", None)
        timers = getattr(timer, "timers", None)
        if timers is None:
            return None
        return {name: t.elapsed for name, t in timers.items()}

    def _record(self, res: dict) -> dict:
        epot = res["energy"]
        ekin = self.atoms.kinetic_energy()
        data = {
            "step": self.step_count,
            "time_fs": self.step_count * self.integrator.dt,
            "epot": epot,
            "ekin": ekin,
            "etot": epot + ekin,
            "temperature": self.atoms.temperature(),
            "conserved": self.integrator.conserved_quantity(self.atoms, epot),
            "results": res,
        }
        if hasattr(self.calc, "state_report"):
            # diagnostics only — a calculator whose stats channel fails
            # independently of compute (e.g. a remote calculator) must
            # not take the trajectory down
            try:
                data["calc_report"] = self.calc.state_report()
            except Exception:
                data["calc_report"] = None
        return data

    def _notify(self, data: dict) -> None:
        for obs, interval in self.observers:
            if self.step_count % interval == 0:
                obs(self.step_count, self.atoms, data)

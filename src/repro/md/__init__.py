"""Molecular dynamics: integrators, thermostats, driver, trajectories."""

from repro.md.velocities import maxwell_boltzmann_velocities
from repro.md.verlet import VelocityVerlet
from repro.md.thermostats import (
    BerendsenThermostat,
    LangevinDynamics,
    NoseHoover,
    NoseHooverChain,
    VelocityRescale,
)
from repro.md.driver import MDDriver
from repro.md.trajectory import Trajectory
from repro.md.observers import ThermoLog, TrajectoryRecorder, XYZWriter
from repro.md.ramps import TemperatureRamp, anneal_protocol
from repro.md.barostat import BerendsenNPT

__all__ = [
    "maxwell_boltzmann_velocities",
    "VelocityVerlet",
    "NoseHoover",
    "NoseHooverChain",
    "BerendsenThermostat",
    "LangevinDynamics",
    "VelocityRescale",
    "MDDriver",
    "Trajectory",
    "ThermoLog",
    "TrajectoryRecorder",
    "XYZWriter",
    "TemperatureRamp",
    "anneal_protocol",
    "BerendsenNPT",
]

"""Canonical-ensemble integrators: Nosé–Hoover (+chains), Berendsen,
Langevin (BAOAB), and plain velocity rescaling.

The Nosé–Hoover implementation follows the operator-splitting form of
Martyna, Tuckerman & Klein as presented in Frenkel & Smit, *Understanding
Molecular Simulation* — thermostat half-update, velocity-Verlet core,
thermostat half-update.  Its conserved quantity (the extended-system
energy)

.. math::

   H' = E_{pot} + E_{kin} + \\tfrac12 Q\\,v_\\xi^2 + g k_B T\\,\\xi

is exposed through :meth:`NoseHoover.conserved_quantity` and monitored by
the F5 benchmark to the same "< 1 part in 10⁴, no drift" standard the
era's TBMD papers demonstrate for their NVT runs.

The thermostat mass defaults to ``Q = g·k_B·T·τ²`` with relaxation time
τ; ``target_temperature`` is a mutable attribute, which is how the
0.5 K/fs heating-ramp protocol of the classic nanotube simulations is
driven (see :mod:`repro.md.ramps`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MDError
from repro.md.verlet import Integrator
from repro.units import FORCE_TO_ACC, KB
from repro.utils.rng import default_rng


def _ndof(atoms) -> int:
    """Degrees of freedom thermostatted: 3 per free atom."""
    return 3 * int((~atoms.fixed).sum())


class NoseHoover(Integrator):
    """Single Nosé–Hoover thermostat (NVT).

    Parameters
    ----------
    dt : time step (fs).
    temperature : target temperature (K); mutable between steps.
    tau : thermostat relaxation time (fs); sets ``Q = g kB T τ²``.
    q_mass : explicit thermostat mass (eV·fs²), overriding *tau*.
    """

    def __init__(self, dt: float, temperature: float, tau: float = 70.0,
                 q_mass: float | None = None):
        super().__init__(dt)
        if temperature <= 0:
            raise MDError("NVT target temperature must be > 0")
        if tau <= 0:
            raise MDError("tau must be > 0")
        self.target_temperature = float(temperature)
        self.tau = float(tau)
        self._q_explicit = q_mass
        self.xi = 0.0      # thermostat "position" (integral of v_xi)
        self.v_xi = 0.0    # thermostat velocity

    def q_mass(self, atoms) -> float:
        """Thermostat inertia Q in eV·fs²."""
        if self._q_explicit is not None:
            return float(self._q_explicit)
        g = _ndof(atoms)
        return g * KB * self.target_temperature * self.tau**2

    def _thermostat_half(self, atoms) -> None:
        """Quarter–scale–quarter thermostat update over dt/2 (MTK)."""
        dt2 = 0.5 * self.dt
        g = _ndof(atoms)
        q = self.q_mass(atoms)
        kT = KB * self.target_temperature

        ekin2 = 2.0 * atoms.kinetic_energy()
        self.v_xi += 0.25 * self.dt * (ekin2 - g * kT) / q
        scale = np.exp(-self.v_xi * dt2)
        free = ~atoms.fixed
        atoms.velocities[free] *= scale
        self.xi += self.v_xi * dt2
        ekin2 *= scale * scale
        self.v_xi += 0.25 * self.dt * (ekin2 - g * kT) / q

    def step(self, atoms, calc) -> dict:
        dt = self.dt
        self._thermostat_half(atoms)

        f = self.forces
        acc = FORCE_TO_ACC * f / atoms.masses[:, None]
        atoms.velocities += 0.5 * dt * acc
        if atoms.fixed.any():
            atoms.velocities[atoms.fixed] = 0.0
        atoms.positions += dt * atoms.velocities

        res = calc.compute(atoms, forces=True)
        f_new = self.apply_constraints(atoms, res["forces"])
        acc_new = FORCE_TO_ACC * f_new / atoms.masses[:, None]
        atoms.velocities += 0.5 * dt * acc_new

        self._thermostat_half(atoms)
        self._forces = f_new
        self.nsteps += 1
        return res

    def conserved_quantity(self, atoms, epot: float) -> float:
        g = _ndof(atoms)
        q = self.q_mass(atoms)
        kT = KB * self.target_temperature
        return (epot + atoms.kinetic_energy()
                + 0.5 * q * self.v_xi**2 + g * kT * self.xi)


class NoseHooverChain(Integrator):
    """Nosé–Hoover chain thermostat (MTK), default chain length 3.

    Chains cure the ergodicity pathologies of the single thermostat for
    small or stiff systems (the classic harmonic-oscillator failure case).
    """

    def __init__(self, dt: float, temperature: float, tau: float = 70.0,
                 chain_length: int = 3):
        super().__init__(dt)
        if temperature <= 0:
            raise MDError("NVT target temperature must be > 0")
        if chain_length < 1:
            raise MDError("chain_length must be >= 1")
        self.target_temperature = float(temperature)
        self.tau = float(tau)
        self.m = int(chain_length)
        self.xi = np.zeros(self.m)
        self.v_xi = np.zeros(self.m)

    def _masses(self, atoms) -> np.ndarray:
        g = _ndof(atoms)
        kT = KB * self.target_temperature
        q = np.full(self.m, kT * self.tau**2)
        q[0] *= g
        return q

    def _chain_half(self, atoms) -> None:
        dt2 = 0.5 * self.dt
        dt4 = 0.25 * self.dt
        dt8 = 0.125 * self.dt
        g = _ndof(atoms)
        kT = KB * self.target_temperature
        q = self._masses(atoms)
        ekin2 = 2.0 * atoms.kinetic_energy()

        # update chain tail → head
        glast = (q[self.m - 2] * self.v_xi[self.m - 2] ** 2 - kT) / q[self.m - 1] \
            if self.m > 1 else 0.0
        if self.m > 1:
            self.v_xi[-1] += dt4 * glast
        for k in range(self.m - 2, 0, -1):
            fac = np.exp(-dt8 * self.v_xi[k + 1])
            self.v_xi[k] = fac * (fac * self.v_xi[k]
                                  + dt4 * (q[k - 1] * self.v_xi[k - 1]**2 - kT) / q[k])
        fac = np.exp(-dt8 * self.v_xi[1]) if self.m > 1 else 1.0
        g0 = (ekin2 - g * kT) / q[0]
        self.v_xi[0] = fac * (fac * self.v_xi[0] + dt4 * g0)

        # scale particle velocities, advance xi
        scale = np.exp(-dt2 * self.v_xi[0])
        free = ~atoms.fixed
        atoms.velocities[free] *= scale
        ekin2 *= scale * scale
        self.xi += dt2 * self.v_xi

        # update chain head → tail
        g0 = (ekin2 - g * kT) / q[0]
        fac = np.exp(-dt8 * self.v_xi[1]) if self.m > 1 else 1.0
        self.v_xi[0] = fac * (fac * self.v_xi[0] + dt4 * g0)
        for k in range(1, self.m - 1):
            fac = np.exp(-dt8 * self.v_xi[k + 1])
            gk = (q[k - 1] * self.v_xi[k - 1]**2 - kT) / q[k]
            self.v_xi[k] = fac * (fac * self.v_xi[k] + dt4 * gk)
        if self.m > 1:
            glast = (q[self.m - 2] * self.v_xi[self.m - 2]**2 - kT) / q[self.m - 1]
            self.v_xi[-1] += dt4 * glast

    def step(self, atoms, calc) -> dict:
        dt = self.dt
        self._chain_half(atoms)
        f = self.forces
        acc = FORCE_TO_ACC * f / atoms.masses[:, None]
        atoms.velocities += 0.5 * dt * acc
        if atoms.fixed.any():
            atoms.velocities[atoms.fixed] = 0.0
        atoms.positions += dt * atoms.velocities
        res = calc.compute(atoms, forces=True)
        f_new = self.apply_constraints(atoms, res["forces"])
        atoms.velocities += 0.5 * dt * FORCE_TO_ACC * f_new / atoms.masses[:, None]
        self._chain_half(atoms)
        self._forces = f_new
        self.nsteps += 1
        return res

    def conserved_quantity(self, atoms, epot: float) -> float:
        g = _ndof(atoms)
        kT = KB * self.target_temperature
        q = self._masses(atoms)
        e = epot + atoms.kinetic_energy()
        e += 0.5 * float(np.sum(q * self.v_xi**2))
        e += g * kT * self.xi[0] + kT * float(np.sum(self.xi[1:]))
        return e


class BerendsenThermostat(Integrator):
    """Berendsen weak-coupling thermostat (not canonical — a workhorse for
    equilibration, kept for completeness and comparison benches)."""

    def __init__(self, dt: float, temperature: float, tau: float = 100.0):
        super().__init__(dt)
        if temperature <= 0:
            raise MDError("target temperature must be > 0")
        if tau < dt:
            raise MDError("tau must be >= dt for stability")
        self.target_temperature = float(temperature)
        self.tau = float(tau)

    def step(self, atoms, calc) -> dict:
        dt = self.dt
        f = self.forces
        acc = FORCE_TO_ACC * f / atoms.masses[:, None]
        atoms.velocities += 0.5 * dt * acc
        atoms.positions += dt * atoms.velocities
        res = calc.compute(atoms, forces=True)
        f_new = self.apply_constraints(atoms, res["forces"])
        atoms.velocities += 0.5 * dt * FORCE_TO_ACC * f_new / atoms.masses[:, None]
        if atoms.fixed.any():
            atoms.velocities[atoms.fixed] = 0.0
        t_now = atoms.temperature()
        if t_now > 0:
            lam = np.sqrt(max(0.0, 1.0 + (dt / self.tau)
                              * (self.target_temperature / t_now - 1.0)))
            atoms.velocities[~atoms.fixed] *= lam
        self._forces = f_new
        self.nsteps += 1
        return res


class LangevinDynamics(Integrator):
    """Langevin dynamics with the BAOAB splitting (Leimkuhler–Matthews).

    Canonical sampling with excellent configurational accuracy; the O-step
    is the exact Ornstein–Uhlenbeck solution.
    """

    def __init__(self, dt: float, temperature: float, friction: float = 0.01,
                 seed=None):
        super().__init__(dt)
        if temperature < 0:
            raise MDError("temperature must be >= 0")
        if friction <= 0:
            raise MDError("friction must be > 0 (fs⁻¹)")
        self.target_temperature = float(temperature)
        self.friction = float(friction)
        self.rng = default_rng(seed)

    def step(self, atoms, calc) -> dict:
        dt = self.dt
        free = ~atoms.fixed
        m = atoms.masses[:, None]

        # B: half kick
        atoms.velocities += 0.5 * dt * FORCE_TO_ACC * self.forces / m
        # A: half drift
        atoms.positions += 0.5 * dt * atoms.velocities
        # O: Ornstein–Uhlenbeck
        c1 = np.exp(-self.friction * dt)
        sigma = np.sqrt(KB * self.target_temperature * FORCE_TO_ACC
                        / atoms.masses[free])
        noise = self.rng.normal(size=(int(free.sum()), 3)) * sigma[:, None]
        atoms.velocities[free] = (c1 * atoms.velocities[free]
                                  + np.sqrt(1.0 - c1 * c1) * noise)
        # A: half drift
        atoms.positions += 0.5 * dt * atoms.velocities
        res = calc.compute(atoms, forces=True)
        f_new = self.apply_constraints(atoms, res["forces"])
        # B: half kick
        atoms.velocities += 0.5 * dt * FORCE_TO_ACC * f_new / m
        if atoms.fixed.any():
            atoms.velocities[atoms.fixed] = 0.0
        self._forces = f_new
        self.nsteps += 1
        return res


class VelocityRescale(Integrator):
    """Velocity-Verlet with hard rescaling to the target temperature every
    *interval* steps — the crudest thermostat, kept as a baseline."""

    def __init__(self, dt: float, temperature: float, interval: int = 1):
        super().__init__(dt)
        if temperature <= 0:
            raise MDError("target temperature must be > 0")
        if interval < 1:
            raise MDError("interval must be >= 1")
        self.target_temperature = float(temperature)
        self.interval = int(interval)

    def step(self, atoms, calc) -> dict:
        dt = self.dt
        f = self.forces
        atoms.velocities += 0.5 * dt * FORCE_TO_ACC * f / atoms.masses[:, None]
        atoms.positions += dt * atoms.velocities
        res = calc.compute(atoms, forces=True)
        f_new = self.apply_constraints(atoms, res["forces"])
        atoms.velocities += 0.5 * dt * FORCE_TO_ACC * f_new / atoms.masses[:, None]
        if atoms.fixed.any():
            atoms.velocities[atoms.fixed] = 0.0
        self.nsteps += 1
        if self.nsteps % self.interval == 0:
            t_now = atoms.temperature()
            if t_now > 0:
                atoms.velocities[~atoms.fixed] *= np.sqrt(
                    self.target_temperature / t_now)
        self._forces = f_new
        return res

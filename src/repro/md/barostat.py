"""Berendsen pressure coupling (NPT-ish dynamics).

The weak-coupling barostat: each step the cell and coordinates are
scaled by ``μ = [1 − (dt/τ_P)·κ·(P₀ − P)]^{1/3}`` toward the target
pressure, stacked on top of Berendsen temperature coupling.  Not a true
isothermal–isobaric ensemble (like its thermostat sibling), but the
standard tool for equilibrating density — e.g. preparing liquid samples
at zero pressure before NVT production.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MDError
from repro.geometry.cell import Cell
from repro.md.thermostats import BerendsenThermostat
from repro.units import GPA_TO_EV_PER_A3


class BerendsenNPT(BerendsenThermostat):
    """Berendsen thermostat + barostat.

    Parameters
    ----------
    pressure_gpa :
        Target pressure (GPa).
    tau_p :
        Pressure relaxation time (fs).
    compressibility :
        κ in (eV/Å³)⁻¹; the isothermal compressibility scale of the
        material (default ≈ silicon, 1/B with B ≈ 100 GPa).
    max_scaling :
        Per-step bound on |μ − 1| to keep early equilibration stable.
    """

    def __init__(self, dt: float, temperature: float, pressure_gpa: float = 0.0,
                 tau: float = 100.0, tau_p: float = 500.0,
                 compressibility: float | None = None,
                 max_scaling: float = 0.01):
        super().__init__(dt, temperature, tau=tau)
        if tau_p < dt:
            raise MDError("tau_p must be >= dt")
        self.target_pressure = float(pressure_gpa) * GPA_TO_EV_PER_A3
        self.tau_p = float(tau_p)
        if compressibility is None:
            compressibility = 1.0 / (100.0 * GPA_TO_EV_PER_A3)
        self.compressibility = float(compressibility)
        self.max_scaling = float(max_scaling)

    def step(self, atoms, calc) -> dict:
        if not atoms.cell.fully_periodic:
            raise MDError("pressure coupling needs a fully periodic cell")
        res = super().step(atoms, calc)
        p_now = res.get("pressure")
        if p_now is None:
            raise MDError("calculator does not report pressure")
        # kinetic contribution to the pressure (virial part comes from calc)
        vol = atoms.cell.volume
        p_kin = 2.0 * atoms.kinetic_energy() / (3.0 * vol)
        p_total = p_now + p_kin
        mu3 = 1.0 - (self.dt / self.tau_p) * self.compressibility \
            * (self.target_pressure - p_total)
        mu = np.clip(mu3 ** (1.0 / 3.0),
                     1.0 - self.max_scaling, 1.0 + self.max_scaling)
        atoms.positions *= mu
        atoms.cell = Cell(atoms.cell.matrix * mu, pbc=atoms.cell.pbc)
        return res

    def conserved_quantity(self, atoms, epot: float) -> float:
        # weak coupling conserves nothing; report E_tot for monitoring
        return epot + atoms.kinetic_energy()

"""Standard MD observers: thermo logging, trajectory capture, XYZ dumps."""

from __future__ import annotations

import sys

from repro.md.trajectory import Trajectory


class ThermoLog:
    """Accumulates per-step thermodynamic records into plain lists.

    Attributes (`steps`, `times`, `epot`, `ekin`, `etot`, `temperature`,
    `conserved`) are parallel lists; :meth:`asdict` returns numpy arrays.
    """

    def __init__(self):
        self.steps: list[int] = []
        self.times: list[float] = []
        self.epot: list[float] = []
        self.ekin: list[float] = []
        self.etot: list[float] = []
        self.temperature: list[float] = []
        self.conserved: list[float] = []

    def __call__(self, step, atoms, data) -> None:
        self.steps.append(data["step"])
        self.times.append(data["time_fs"])
        self.epot.append(data["epot"])
        self.ekin.append(data["ekin"])
        self.etot.append(data["etot"])
        self.temperature.append(data["temperature"])
        self.conserved.append(data["conserved"])

    def asdict(self) -> dict:
        import numpy as np

        return {k: np.asarray(getattr(self, k))
                for k in ("steps", "times", "epot", "ekin", "etot",
                          "temperature", "conserved")}

    def conserved_drift(self) -> float:
        """Max relative excursion of the conserved quantity, |ΔH'/H'₀|."""
        import numpy as np

        c = np.asarray(self.conserved)
        if len(c) < 2:
            return 0.0
        ref = abs(c[0]) if c[0] != 0 else 1.0
        return float(np.max(np.abs(c - c[0])) / ref)


class TrajectoryRecorder:
    """Stores frames into a :class:`~repro.md.trajectory.Trajectory`."""

    def __init__(self, trajectory: Trajectory | None = None):
        self.trajectory = trajectory if trajectory is not None else Trajectory()

    def __call__(self, step, atoms, data) -> None:
        self.trajectory.append(atoms, step=data["step"],
                               time_fs=data["time_fs"], epot=data["epot"])


class XYZWriter:
    """Appends frames to an XYZ file as the run progresses."""

    def __init__(self, path):
        self.path = path
        self._first = True

    def __call__(self, step, atoms, data) -> None:
        from repro.geometry.xyz import write_xyz

        write_xyz(self.path, atoms,
                  comment=f"step={data['step']} time_fs={data['time_fs']:.3f} "
                          f"epot={data['epot']:.8f}",
                  append=not self._first)
        self._first = False


class BinaryTrajectoryWriter:
    """Streams frames into a chunked binary ``.ptrj`` file.

    The constant-memory replacement for :class:`XYZWriter` on long
    runs; remember to :meth:`close` (or use as a context manager) so
    the frame index lands on disk.  Accepts either a path or an
    already-open :class:`~repro.trajio.writer.TrajectoryWriter` (the
    service's store hands those out).
    """

    def __init__(self, path_or_writer, **kwargs):
        from repro.trajio.writer import TrajectoryWriter

        if isinstance(path_or_writer, TrajectoryWriter):
            self.writer = path_or_writer
        else:
            self.writer = TrajectoryWriter(path_or_writer, **kwargs)

    def __call__(self, step, atoms, data) -> None:
        self.writer.write(atoms, step=data["step"],
                          time_fs=data["time_fs"], epot=data["epot"],
                          ekin=data["ekin"],
                          temperature=data["temperature"])

    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "BinaryTrajectoryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProgressPrinter:
    """Prints a one-line thermo summary (for example scripts)."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stdout
        self._header_done = False

    def __call__(self, step, atoms, data) -> None:
        if not self._header_done:
            self.stream.write(
                f"{'step':>8} {'t(fs)':>10} {'Epot(eV)':>14} "
                f"{'Ekin(eV)':>12} {'T(K)':>10} {'conserved':>14}\n")
            self._header_done = True
        self.stream.write(
            f"{data['step']:>8d} {data['time_fs']:>10.1f} "
            f"{data['epot']:>14.6f} {data['ekin']:>12.6f} "
            f"{data['temperature']:>10.1f} {data['conserved']:>14.6f}\n")

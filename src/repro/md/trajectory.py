"""In-memory trajectory storage with XYZ round-trip."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MDError
from repro.geometry.atoms import Atoms
from repro.geometry.xyz import iread_xyz, write_xyz


@dataclass
class Frame:
    """One stored snapshot."""

    step: int
    time_fs: float
    positions: np.ndarray
    velocities: np.ndarray
    epot: float
    ekin: float
    temperature: float


class Trajectory:
    """A list of frames sharing one topology (symbols/cell).

    Provides array views over the stored quantities for analysis code
    (MSD, VACF need (T, N, 3) position/velocity stacks).
    """

    def __init__(self, symbols=None, cell=None):
        self.symbols = list(symbols) if symbols is not None else None
        self.cell = cell
        self.frames: list[Frame] = []

    def __len__(self) -> int:
        return len(self.frames)

    def append(self, atoms: Atoms, step: int = 0, time_fs: float = 0.0,
               epot: float = 0.0) -> None:
        if self.symbols is None:
            self.symbols = atoms.symbols
            self.cell = atoms.cell
        elif atoms.symbols != self.symbols:
            raise MDError("trajectory frames must share one composition")
        self.frames.append(Frame(
            step=step,
            time_fs=time_fs,
            positions=atoms.positions.copy(),
            velocities=atoms.velocities.copy(),
            epot=epot,
            ekin=atoms.kinetic_energy(),
            temperature=atoms.temperature(),
        ))

    # -- array views ------------------------------------------------------------
    def positions(self) -> np.ndarray:
        """(T, N, 3) stack of positions."""
        return np.stack([f.positions for f in self.frames])

    def velocities(self) -> np.ndarray:
        """(T, N, 3) stack of velocities."""
        return np.stack([f.velocities for f in self.frames])

    def times(self) -> np.ndarray:
        return np.array([f.time_fs for f in self.frames])

    def temperatures(self) -> np.ndarray:
        return np.array([f.temperature for f in self.frames])

    def potential_energies(self) -> np.ndarray:
        return np.array([f.epot for f in self.frames])

    def atoms_at(self, index: int) -> Atoms:
        """Reconstruct an Atoms object for frame *index*."""
        f = self.frames[index]
        return Atoms(self.symbols, f.positions.copy(), cell=self.cell,
                     velocities=f.velocities.copy())

    # -- persistence -------------------------------------------------------------
    def save_xyz(self, path) -> None:
        with open(path, "w") as fh:
            for f in self.frames:
                at = Atoms(self.symbols, f.positions, cell=self.cell)
                write_xyz(fh, at,
                          comment=f"step={f.step} time_fs={f.time_fs:.3f} "
                                  f"epot={f.epot:.8f}")

    @classmethod
    def load_xyz(cls, path) -> "Trajectory":
        traj = cls()
        for i, at in enumerate(iread_xyz(path)):
            traj.append(at, step=i)
        return traj

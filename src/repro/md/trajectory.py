"""In-memory trajectory storage with XYZ and binary round-trip."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MDError
from repro.geometry.atoms import Atoms
from repro.geometry.cell import Cell
from repro.geometry.xyz import iread_frames, write_xyz


@dataclass
class Frame:
    """One stored snapshot."""

    step: int
    time_fs: float
    positions: np.ndarray
    velocities: np.ndarray
    epot: float
    ekin: float
    temperature: float
    cell: Cell | None = field(default=None)


class Trajectory:
    """A list of frames sharing one topology (symbols).

    Provides array views over the stored quantities for analysis code
    (MSD, VACF need (T, N, 3) position/velocity stacks).  Each frame
    carries its own cell (NPT/barostat runs change it every step);
    ``self.cell`` keeps the first frame's cell as a convenience for
    constant-cell analysis.
    """

    def __init__(self, symbols=None, cell=None):
        self.symbols = list(symbols) if symbols is not None else None
        self.cell = cell
        self.frames: list[Frame] = []

    def __len__(self) -> int:
        return len(self.frames)

    def append(self, atoms: Atoms, step: int = 0, time_fs: float = 0.0,
               epot: float = 0.0) -> None:
        if self.symbols is None:
            self.symbols = atoms.symbols
        elif atoms.symbols != self.symbols:
            raise MDError("trajectory frames must share one composition")
        if self.cell is None:
            self.cell = atoms.cell
        self.frames.append(Frame(
            step=step,
            time_fs=time_fs,
            positions=atoms.positions.copy(),
            velocities=atoms.velocities.copy(),
            epot=epot,
            ekin=atoms.kinetic_energy(),
            temperature=atoms.temperature(),
            cell=atoms.cell,
        ))

    # -- array views ------------------------------------------------------------
    def positions(self) -> np.ndarray:
        """(T, N, 3) stack of positions."""
        return np.stack([f.positions for f in self.frames])

    def velocities(self) -> np.ndarray:
        """(T, N, 3) stack of velocities."""
        return np.stack([f.velocities for f in self.frames])

    def times(self) -> np.ndarray:
        return np.array([f.time_fs for f in self.frames])

    def temperatures(self) -> np.ndarray:
        return np.array([f.temperature for f in self.frames])

    def potential_energies(self) -> np.ndarray:
        return np.array([f.epot for f in self.frames])

    def cells(self) -> np.ndarray:
        """(T, 3, 3) stack of per-frame cell matrices."""
        return np.stack([self._frame_cell(f).matrix for f in self.frames])

    def _frame_cell(self, f: Frame) -> Cell:
        cell = f.cell if f.cell is not None else self.cell
        return cell if cell is not None else Cell.nonperiodic()

    def atoms_at(self, index: int) -> Atoms:
        """Reconstruct an Atoms object for frame *index*."""
        f = self.frames[index]
        return Atoms(self.symbols, f.positions.copy(),
                     cell=self._frame_cell(f),
                     velocities=f.velocities.copy())

    # -- persistence -------------------------------------------------------------
    def save_xyz(self, path) -> None:
        """Write extended-XYZ: per-frame cell, velocity columns, and
        exact (shortest-repr) step/time_fs/epot metadata."""
        with open(path, "w") as fh:
            for f in self.frames:
                at = Atoms(self.symbols, f.positions,
                           cell=self._frame_cell(f),
                           velocities=f.velocities)
                write_xyz(fh, at,
                          comment=f"step={f.step} "
                                  f"time_fs={float(f.time_fs)!r} "
                                  f"epot={float(f.epot)!r}")

    @classmethod
    def load_xyz(cls, path) -> "Trajectory":
        traj = cls()
        for i, (at, info) in enumerate(iread_frames(path)):
            traj.append(at, step=int(info.get("step", i)),
                        time_fs=float(info.get("time_fs", 0.0)),
                        epot=float(info.get("epot", 0.0)))
        return traj

    def save(self, path, **kwargs) -> None:
        """Write the trajectory as a chunked binary ``.ptrj`` file.

        Keyword arguments pass through to
        :class:`~repro.trajio.writer.TrajectoryWriter`.
        """
        from repro.trajio.writer import TrajectoryWriter
        with TrajectoryWriter(path, self.symbols, **kwargs) as w:
            for f in self.frames:
                cell = self._frame_cell(f)
                w.write_arrays(self.symbols or [], f.positions,
                               cell=cell.matrix, pbc=cell.pbc,
                               velocities=f.velocities, step=f.step,
                               time_fs=f.time_fs, epot=f.epot,
                               ekin=f.ekin, temperature=f.temperature)

    @classmethod
    def load(cls, path) -> "Trajectory":
        """Read a ``.ptrj`` file back into memory."""
        from repro.trajio.reader import TrajectoryReader
        traj = cls()
        with TrajectoryReader(path) as reader:
            traj.symbols = reader.symbols
            for fr in reader:
                nat = reader.natoms
                traj.frames.append(Frame(
                    step=fr.step, time_fs=fr.time_fs,
                    positions=np.asarray(fr.positions),
                    velocities=np.zeros((nat, 3)) if fr.velocities is None
                    else np.asarray(fr.velocities),
                    epot=fr.epot, ekin=fr.ekin,
                    temperature=fr.temperature, cell=fr.cell))
            if traj.frames:
                traj.cell = traj.frames[0].cell
        return traj

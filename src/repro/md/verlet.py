"""Velocity-Verlet integration (NVE) and the integrator base class.

The integrator contract: :meth:`initialize` is called once with the
starting structure (computes initial forces), then :meth:`step` advances
positions/velocities by ``dt`` and returns the post-step results dict from
the calculator.  Fixed atoms never move: their forces and velocities are
masked to zero inside :meth:`apply_constraints`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import MDError
from repro.units import FORCE_TO_ACC


class Integrator(ABC):
    """Base class for MD integrators."""

    def __init__(self, dt: float):
        if dt <= 0:
            raise MDError(f"time step must be > 0, got {dt}")
        self.dt = float(dt)
        self._forces: np.ndarray | None = None
        self.nsteps = 0

    # -- lifecycle -------------------------------------------------------------
    def initialize(self, atoms, calc) -> dict:
        """Compute initial forces; must be called before the first step."""
        res = calc.compute(atoms, forces=True)
        self._forces = self.apply_constraints(atoms, res["forces"])
        return res

    def apply_constraints(self, atoms, forces: np.ndarray) -> np.ndarray:
        """Zero forces (and velocities) of fixed atoms."""
        if atoms.fixed.any():
            forces = forces.copy()
            forces[atoms.fixed] = 0.0
            atoms.velocities[atoms.fixed] = 0.0
        return forces

    @abstractmethod
    def step(self, atoms, calc) -> dict:
        """Advance one time step; returns the calculator results."""

    # -- bookkeeping --------------------------------------------------------------
    def conserved_quantity(self, atoms, epot: float) -> float:
        """The quantity this integrator conserves (E_tot for NVE)."""
        return epot + atoms.kinetic_energy()

    @property
    def forces(self) -> np.ndarray:
        if self._forces is None:
            raise MDError("integrator not initialised; call initialize() first")
        return self._forces


class VelocityVerlet(Integrator):
    """Microcanonical (NVE) velocity-Verlet integrator.

    The standard kick–drift–kick splitting: time-reversible, symplectic,
    energy drift bounded for stable time steps.  The F4 benchmark
    demonstrates the < 1 part in 10⁴ conservation the era's papers quote
    for dt = 1 fs.
    """

    def step(self, atoms, calc) -> dict:
        dt = self.dt
        f = self.forces
        acc = FORCE_TO_ACC * f / atoms.masses[:, None]

        atoms.velocities += 0.5 * dt * acc
        atoms.positions += dt * atoms.velocities

        res = calc.compute(atoms, forces=True)
        f_new = self.apply_constraints(atoms, res["forces"])
        acc_new = FORCE_TO_ACC * f_new / atoms.masses[:, None]
        atoms.velocities += 0.5 * dt * acc_new
        if atoms.fixed.any():
            atoms.velocities[atoms.fixed] = 0.0

        self._forces = f_new
        self.nsteps += 1
        return res

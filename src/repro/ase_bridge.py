"""ASE calculator bridge: any ``make_calculator`` spec as an
``ase.calculators.Calculator``.

::

    from ase.build import bulk
    from ase.optimize import BFGS
    from repro.ase_bridge import PytbmdCalculator

    atoms = bulk("Si", "diamond", a=5.43, cubic=True)
    atoms.calc = PytbmdCalculator(model="gsp-si", solver="linscale",
                                  kT=0.1, r_loc=6.0)
    BFGS(atoms).run(fmax=0.02)

Every repro calculator — exact diagonalisation, the dense density-matrix
kernels, the O(N) localization-region engine, the classical baseline —
becomes usable from the whole ASE ecosystem (optimizers, NEB, ASE MD,
phonon tools), and the campaign framework gains ASE-driven scenarios
(:mod:`repro.scenarios.ase_relax`).

State reuse: the bridge keeps one persistent :class:`repro.geometry
.atoms.Atoms` mirror and updates it *in place* on every ``calculate``
call, so the wrapped calculator's :class:`~repro.state.CalculatorState`
change report sees exactly what an in-process MD loop would produce —
positions-only updates (the common optimizer/MD case) ride the fast
path (warm neighbor lists, H pattern, localization regions, spectral
window); cell or species changes invalidate precisely what the state
contract demands.

Conventions: eV/Å throughout on both sides (no unit conversion), and
the stress ``σ = (1/V) ∂E/∂ε`` the repo's calculators return is already
ASE's convention — the bridge only reorders the 3×3 tensor into ASE's
Voigt ``[xx, yy, zz, yz, xz, xy]``.

``ase`` is an optional extra (``pip install pytbmd[ase]``): this module
always imports, :data:`HAVE_ASE` says whether the bridge is usable, and
constructing :class:`PytbmdCalculator` without ASE raises a
:class:`~repro.errors.ReproError` with the install hint.
"""

from __future__ import annotations

import numpy as np

from repro.calculators import CalculatorSpec, make_calculator
from repro.errors import ReproError

try:  # pragma: no cover - exercised in the optional-deps CI job
    from ase.calculators.calculator import Calculator, all_changes

    HAVE_ASE = True
except ImportError:  # pragma: no cover - the numpy/scipy-only envs
    HAVE_ASE = False
    all_changes = ["positions", "numbers", "cell", "pbc",
                   "initial_charges", "initial_magmoms"]

    class Calculator:  # type: ignore[no-redef]
        """Import-guard stand-in so this module (and subclass definition)
        loads without ASE; instantiating the bridge still fails with a
        clear message."""

        def __init__(self, **kwargs):
            pass


def to_repro_atoms(ase_atoms):
    """``ase.Atoms`` → :class:`repro.geometry.atoms.Atoms` (eV/Å both
    sides, so this is a plain repack, no unit conversion)."""
    from repro.geometry.atoms import Atoms
    from repro.geometry.cell import Cell

    cell = np.asarray(ase_atoms.cell[:], dtype=float)
    pbc = tuple(bool(p) for p in ase_atoms.pbc)
    has_cell = any(pbc) and np.abs(cell).max() > 0.0
    return Atoms(ase_atoms.get_chemical_symbols(),
                 np.asarray(ase_atoms.positions, dtype=float),
                 cell=Cell(cell, pbc=pbc) if has_cell else None)


def _voigt(stress_3x3) -> np.ndarray:
    """3×3 stress → ASE Voigt order [xx, yy, zz, yz, xz, xy]."""
    s = np.asarray(stress_3x3, dtype=float)
    s = 0.5 * (s + s.T)
    return np.array([s[0, 0], s[1, 1], s[2, 2],
                     s[1, 2], s[0, 2], s[0, 1]])


class PytbmdCalculator(Calculator):
    """ASE calculator running any pytbmd calculator spec.

    Parameters
    ----------
    spec :
        A :class:`~repro.calculators.CalculatorSpec` or plain spec dict
        (see :func:`repro.calculators.make_calculator`).  Spec fields
        may equally be passed as keyword arguments; kwargs win over
        *spec* on conflict.
    """

    implemented_properties = ["energy", "free_energy", "forces", "stress"]

    def __init__(self, spec=None, **kwargs):
        if not HAVE_ASE:
            raise ReproError(
                "the ASE bridge needs the optional 'ase' dependency — "
                "install it with: pip install pytbmd[ase]")
        spec_fields = set(CalculatorSpec.field_names())
        spec_kwargs = {k: kwargs.pop(k) for k in list(kwargs)
                       if k in spec_fields}
        Calculator.__init__(self, **kwargs)
        base = CalculatorSpec.from_dict(spec, context="ase bridge")
        self.spec = (base.replace(**spec_kwargs) if spec_kwargs else base)
        self.repro_calc = make_calculator(self.spec)
        self._repro_atoms = None

    # -- persistent-state mirror ------------------------------------------
    def _sync_atoms(self, ase_atoms):
        """Mirror *ase_atoms* into the persistent repro structure,
        updating in place whenever the change is expressible in place —
        that is what lets the wrapped calculator's state contract
        classify the change (positions-only → fast path) instead of
        seeing a brand-new structure every call."""
        mirror = self._repro_atoms
        fresh = to_repro_atoms(ase_atoms)

        def pbc_sig(at):
            return (None if at.cell is None
                    else tuple(bool(p) for p in at.cell.pbc))

        if (mirror is None or len(mirror) != len(fresh)
                or mirror.symbols != fresh.symbols
                or pbc_sig(mirror) != pbc_sig(fresh)):
            self._repro_atoms = fresh
            return self._repro_atoms
        if fresh.cell is not None and not np.array_equal(
                mirror.cell.matrix, fresh.cell.matrix):
            mirror.cell = fresh.cell
        mirror.positions[:] = fresh.positions
        return mirror

    def calculate(self, atoms=None, properties=("energy",),
                  system_changes=all_changes):
        Calculator.calculate(self, atoms, properties, system_changes)
        target = self._sync_atoms(self.atoms)
        want_forces = bool({"forces", "stress"} & set(properties))
        res = self.repro_calc.compute(target, forces=want_forces)
        self.results = {
            "energy": float(res["energy"]),
            "free_energy": float(res.get("free_energy", res["energy"])),
        }
        if want_forces:
            self.results["forces"] = np.array(res["forces"], dtype=float)
            if "stress" in res:
                self.results["stress"] = _voigt(res["stress"])

    def state_report(self) -> dict:
        """The wrapped calculator's rebuild-vs-reuse diagnostics (when
        it keeps them) — how often ASE-driven updates hit the fast
        path."""
        report = getattr(self.repro_calc, "state_report", None)
        return report() if callable(report) else {}

    def __repr__(self) -> str:
        return f"PytbmdCalculator({self.spec.describe()})"

"""Unit system and physical constants for pytbmd.

The internal unit system is the standard one for tight-binding molecular
dynamics codes of the early 1990s:

* energy      — electron-volt (eV)
* length      — ångström (Å)
* time        — femtosecond (fs)
* mass        — unified atomic mass unit (amu)
* temperature — kelvin (K)

These four base units are *not* mutually consistent: ``1 amu·Å²/fs²`` is not
``1 eV``.  The conversion factors below reconcile them; all dynamical code in
:mod:`repro.md` uses :data:`FORCE_TO_ACC` and :data:`MASS_VEL2_TO_EV` so that
positions stay in Å, velocities in Å/fs, forces in eV/Å and energies in eV.

Values follow CODATA 2018.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Base SI values (CODATA 2018) used only to derive the conversion factors.
# ---------------------------------------------------------------------------
_EV_J = 1.602176634e-19          # J per eV (exact)
_AMU_KG = 1.66053906660e-27      # kg per amu
_ANGSTROM_M = 1.0e-10            # m per Å
_FS_S = 1.0e-15                  # s per fs

# ---------------------------------------------------------------------------
# Fundamental constants in internal units.
# ---------------------------------------------------------------------------
#: Boltzmann constant in eV/K.
KB = 8.617333262e-5

#: Reduced Planck constant in eV·fs.
HBAR = 0.6582119569

#: Planck constant in eV·fs.
H_PLANCK = 2.0 * math.pi * HBAR

#: Speed of light in Å/fs.
C_LIGHT = 2997.92458

# ---------------------------------------------------------------------------
# Mechanical conversion factors.
# ---------------------------------------------------------------------------
#: Multiply (force[eV/Å] / mass[amu]) by this to get acceleration in Å/fs².
FORCE_TO_ACC = _EV_J / (_AMU_KG * _ANGSTROM_M**2 / _FS_S**2) * 1.0  # derived below

# Derivation: F/m has SI value (eV→J)/(amu→kg) / (Å→m) m/s².  Converting
# m/s² → Å/fs² multiplies by 1e-10/1e-30 = 1e20... computed explicitly:
_ACC_SI = _EV_J / (_AMU_KG * _ANGSTROM_M)          # m/s² per (eV/Å/amu)
FORCE_TO_ACC = _ACC_SI * (_FS_S**2 / _ANGSTROM_M)  # Å/fs² per (eV/Å/amu)

#: Multiply mass[amu]·velocity²[(Å/fs)²] by this to get energy in eV.
MASS_VEL2_TO_EV = 1.0 / FORCE_TO_ACC

#: 1 eV/Å³ expressed in gigapascal — used for stress/pressure reporting.
EV_PER_A3_TO_GPA = _EV_J / _ANGSTROM_M**3 / 1.0e9

#: 1 GPa expressed in eV/Å³.
GPA_TO_EV_PER_A3 = 1.0 / EV_PER_A3_TO_GPA

# ---------------------------------------------------------------------------
# Element data (only the species the TB model zoo supports, plus a few
# common neighbours so structure builders are not artificially limited).
# ---------------------------------------------------------------------------
#: Atomic masses in amu, keyed by chemical symbol.
ATOMIC_MASSES: dict[str, float] = {
    "H": 1.008,
    "He": 4.002602,
    "B": 10.811,
    "C": 12.011,
    "N": 14.007,
    "O": 15.999,
    "Si": 28.0855,
    "P": 30.973762,
    "Ge": 72.630,
}

#: Atomic numbers keyed by chemical symbol.
ATOMIC_NUMBERS: dict[str, int] = {
    "H": 1,
    "He": 2,
    "B": 5,
    "C": 6,
    "N": 7,
    "O": 8,
    "Si": 14,
    "P": 15,
    "Ge": 32,
}

#: Chemical symbols keyed by atomic number (inverse of ATOMIC_NUMBERS).
ATOMIC_SYMBOLS: dict[int, str] = {z: s for s, z in ATOMIC_NUMBERS.items()}


def mass_of(symbol: str) -> float:
    """Return the atomic mass (amu) for *symbol*.

    Raises ``KeyError`` with a helpful message for unknown species.
    """
    try:
        return ATOMIC_MASSES[symbol]
    except KeyError:
        known = ", ".join(sorted(ATOMIC_MASSES))
        raise KeyError(
            f"unknown chemical symbol {symbol!r}; known species: {known}"
        ) from None


def kinetic_energy(masses, velocities) -> float:
    """Total kinetic energy in eV.

    Parameters
    ----------
    masses : (N,) array-like, amu
    velocities : (N, 3) array-like, Å/fs
    """
    import numpy as np

    m = np.asarray(masses, dtype=float)
    v = np.asarray(velocities, dtype=float)
    return 0.5 * MASS_VEL2_TO_EV * float(np.sum(m * np.sum(v * v, axis=1)))


def temperature_from_kinetic(ekin: float, ndof: int) -> float:
    """Instantaneous temperature (K) from kinetic energy and #dof."""
    if ndof <= 0:
        return 0.0
    return 2.0 * ekin / (ndof * KB)


def kinetic_from_temperature(temp: float, ndof: int) -> float:
    """Kinetic energy (eV) corresponding to temperature *temp* over *ndof*."""
    return 0.5 * ndof * KB * temp

"""F5 — Canonical sampling: Nosé–Hoover temperature trace and the
extended-system conserved quantity.

Reproduces the NVT validation panel: the instantaneous temperature
fluctuates around the setpoint with the canonical variance
Var(T) = 2T²/3N, while the extended-system energy stays flat (< 1e-3
relative) — the correctness monitor the era's papers describe.
"""

import numpy as np

from repro.bench import print_table, silicon_supercell
from repro.md import MDDriver, NoseHooverChain, ThermoLog, maxwell_boltzmann_velocities
from repro.tb import GSPSilicon, TBCalculator

TARGET = 1000.0


def test_f5_nvt_temperature_control(benchmark):
    at = silicon_supercell(2)
    maxwell_boltzmann_velocities(at, TARGET, seed=5)
    log = ThermoLog()
    nhc = NoseHooverChain(dt=1.0, temperature=TARGET, tau=50.0)
    md = MDDriver(at, TBCalculator(GSPSilicon()), nhc, observers=[log])
    md.run(400)

    t = np.asarray(log.temperature[100:])
    t_mean = float(t.mean())
    t_std = float(t.std())
    n_free = len(at)
    sigma_canonical = TARGET * np.sqrt(2.0 / (3.0 * n_free))
    drift = log.conserved_drift()

    print_table(
        "F5: Nosé–Hoover chain canonical sampling, Si64",
        ["quantity", "value"],
        [["target T (K)", TARGET],
         ["⟨T⟩ (K)", t_mean],
         ["σ(T) measured (K)", t_std],
         ["σ(T) canonical (K)", sigma_canonical],
         ["conserved drift", drift]],
        float_fmt="{:.4g}")

    # --- shape assertions -------------------------------------------------
    assert t_mean == pytest.approx(TARGET, rel=0.12)
    assert 0.3 * sigma_canonical < t_std < 3.0 * sigma_canonical
    assert drift < 2e-3

    benchmark.pedantic(lambda: md.run(10), rounds=2, iterations=1)


import pytest  # noqa: E402  (used in assertions above)

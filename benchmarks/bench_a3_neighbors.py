"""A3 — Ablation: neighbour-list strategies over an MD trajectory.

Brute force (O(N²·images)) vs linked cells (O(N)) for one build, and the
Verlet skin list's rebuild avoidance over a simulated drift sequence.
Expected shape: cells overtake brute force once the system outgrows the
minimum-image restriction; the skin list rebuilds only a small fraction
of the steps (the classic ~1-in-10 economy).
"""

import time

import numpy as np

from repro.bench import print_table, silicon_supercell
from repro.neighbors import VerletList, brute_force_neighbors, cell_list_neighbors
from repro.neighbors.celllist import cell_list_admissible
from repro.tb import GSPSilicon

RCUT = GSPSilicon().cutoff


def timed_builds(at, n=3):
    tb = tc = None
    t0 = time.perf_counter()
    for _ in range(n):
        nl_b = brute_force_neighbors(at, RCUT)
    tb = (time.perf_counter() - t0) / n
    if cell_list_admissible(at, RCUT):
        t0 = time.perf_counter()
        for _ in range(n):
            nl_c = cell_list_neighbors(at, RCUT)
        tc = (time.perf_counter() - t0) / n
        assert nl_c.n_pairs == nl_b.n_pairs
    return tb, tc, nl_b.n_pairs


def test_a3_neighbor_strategies(benchmark):
    rows = []
    for mult in (2, 3, 4):
        at = silicon_supercell(mult, rattle_amp=0.1, seed=8)
        tb, tc, pairs = timed_builds(at)
        rows.append([len(at), pairs, tb * 1e3,
                     tc * 1e3 if tc else float("nan"),
                     tb / tc if tc else float("nan")])
    print_table(
        "A3: neighbour-list build time",
        ["N", "pairs", "brute (ms)", "cells (ms)", "speedup"],
        rows, float_fmt="{:.4g}")

    # Verlet skin economy over a drifting trajectory
    at = silicon_supercell(3, rattle_amp=0.05, seed=9)
    rng = np.random.default_rng(10)
    results = []
    for skin in (0.2, 0.5, 1.0):
        vl = VerletList(rcut=RCUT, skin=skin)
        sim = at.copy()
        for _ in range(60):
            sim.positions += rng.normal(0, 0.01, size=sim.positions.shape)
            vl.update(sim)
        results.append([skin, vl.n_builds, vl.n_updates,
                        vl.n_builds / vl.n_updates])
    print_table(
        "A3b: Verlet skin rebuild economy (60 MD-like steps)",
        ["skin (Å)", "rebuilds", "updates", "rebuild fraction"],
        results, float_fmt="{:.3g}")

    # --- shape assertions -------------------------------------------------
    assert rows[-1][4] > 1.0, "cells must beat brute force at 512 atoms"
    fracs = [r[3] for r in results]
    assert all(b <= a for a, b in zip(fracs, fracs[1:])), \
        "bigger skin → fewer rebuilds"
    assert fracs[-1] < 0.35

    big = silicon_supercell(4, rattle_amp=0.1, seed=8)
    benchmark.pedantic(lambda: cell_list_neighbors(big, RCUT),
                       rounds=3, iterations=1)

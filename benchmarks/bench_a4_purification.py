"""A4 — Ablation: density-matrix purification vs diagonalisation, and the
O(N) crossover projection.

Canonical purification (Palser–Manolopoulos) replaces the O(N³)
eigensolve with matrix polynomials of the Hamiltonian.  Its O(N) promise
rests on density-matrix *locality*: |ρ_ij| decays exponentially with
distance for gapped systems.  Cells accessible in this substrate (≤ 216
atoms, ≤ 16 Å) are smaller than the decay range at useful thresholds, so
— exactly like the era's papers — this benchmark

1. validates purification against diagonalisation (energy to ~1e-8/atom,
   iteration count flat in N),
2. *measures* the exponential decay length ξ of ρ on the largest cell,
3. projects the crossover system size N* where thresholded purification
   arithmetic beats the 10·M³ eigensolve.

Expected shape: clean exponential decay (gapped Si), iteration count
roughly size-independent, projected N* in the 10²–10⁵-atom range that
drove the O(N) literature.
"""

import time

import numpy as np

from repro.bench import print_table, silicon_supercell
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon
from repro.tb.eigensolvers import solve_eigh
from repro.tb.hamiltonian import build_hamiltonian, orbital_offsets
from repro.tb.purification import purify_density_matrix

MULTIPLIERS = (1, 2, 3)
THRESHOLD = 1e-5          # locality threshold for the projection


def setup(multiplier):
    at = silicon_supercell(multiplier, rattle_amp=0.03, seed=13)
    model = GSPSilicon()
    nl = neighbor_list(at, model.cutoff)
    H, _ = build_hamiltonian(at, model, nl)
    return at, model, H


def rho_decay(at, model, rho):
    """Pairs (distance, max block element) for the decay fit."""
    offsets, _ = orbital_offsets(at.symbols, model)
    n = len(at)
    dists, mags = [], []
    for i in range(n):
        for j in range(i + 1, n):
            d = at.distance(i, j)
            blk = rho[offsets[i]:offsets[i] + 4, offsets[j]:offsets[j] + 4]
            m = float(np.abs(blk).max())
            if m > 1e-14:
                dists.append(d)
                mags.append(m)
    return np.array(dists), np.array(mags)


def test_a4_purification_and_on_crossover(benchmark):
    rows = []
    iters = []
    for m in MULTIPLIERS:
        at, model, H = setup(m)
        nelec = 4.0 * len(at)

        t0 = time.perf_counter()
        eps, _ = solve_eigh(H)
        t_diag = time.perf_counter() - t0
        e_diag = 2.0 * float(eps[: int(nelec // 2)].sum())

        t0 = time.perf_counter()
        res = purify_density_matrix(H, nelec)
        t_pur = time.perf_counter() - t0

        rows.append([len(at), H.shape[0], t_diag, t_pur, res.iterations,
                     abs(res.band_energy - e_diag) / len(at)])
        iters.append(res.iterations)
        last = (at, model, res)

    print_table(
        "A4a: dense purification vs diagonalisation",
        ["N", "M", "t_diag (s)", "t_purify (s)", "iterations",
         "|ΔE|/atom (eV)"],
        rows, float_fmt="{:.3g}")

    # --- locality measurement on the largest cell ----------------------------
    at, model, res = last
    d, mag = rho_decay(at, model, np.asarray(res.rho))
    # exponential fit beyond the bonding shell and inside half the box
    # (beyond L/2 periodic images fold back and flatten the tail)
    half_box = float(at.cell.lengths.min()) / 2.0
    sel = (d > 3.0) & (d < half_box) & (mag > 1e-12)
    slope, intercept = np.polyfit(d[sel], np.log(mag[sel]), 1)
    xi = -1.0 / slope
    corr = float(np.corrcoef(d[sel], np.log(mag[sel]))[0, 1])
    r_loc = xi * np.log(np.exp(intercept) / THRESHOLD)

    # arithmetic-crossover projection: thresholded purification costs
    # ~ iters · 4 · M · nnz_row² flops vs 10 M³ for the eigensolve, with
    # nnz_row = orbitals inside the locality sphere.
    density = len(at) / at.cell.volume                 # atoms/Å³
    nnz_row = 4.0 * density * 4.0 / 3.0 * np.pi * r_loc**3
    n_iter = float(np.mean(iters))
    m_star = nnz_row * np.sqrt(0.4 * n_iter)           # 10M³ = 4·iters·M·nnz²
    n_star = m_star / 4.0

    print_table(
        f"A4b: density-matrix locality and projected O(N) crossover "
        f"(threshold {THRESHOLD})",
        ["quantity", "value"],
        [["decay length ξ (Å)", xi],
         ["fit correlation", corr],
         ["locality radius (Å)", r_loc],
         ["nnz per ρ row at threshold", nnz_row],
         ["projected crossover M*", m_star],
         ["projected crossover N* (atoms)", n_star]],
        float_fmt="{:.4g}")

    # --- shape assertions -------------------------------------------------
    for row in rows:
        assert row[5] < 1e-7, "purified band energy must match diag"
    assert max(iters) - min(iters) <= 10, "iterations ~ size-independent"
    assert corr < -0.7, "ρ must decay exponentially (gapped silicon)"
    assert 1.0 < xi < 6.0, "decay length on the Å scale"
    assert 1e2 < n_star < 1e6, \
        "crossover in the range that motivated the O(N) literature"

    _, _, H = setup(2)
    benchmark.pedantic(lambda: purify_density_matrix(H, 256.0),
                       rounds=3, iterations=1)

"""A1 — Ablation: replicated-data vs row-striped Hamiltonian assembly.

Communication-volume comparison of the two assembly decompositions the
era debated: the replicated allgather moves the whole M×M matrix per
step, the row-striped halo exchange only boundary columns.  Expected
shape: row-striping wins on bytes at every P (≈4× here), but replication
keeps the diagonalisation input local — which is why replicated data won
in practice until distributed eigensolvers matured.  Also reports the
owner-i pair-distribution load imbalance the replicated scheme inherits.
"""


from repro.bench import print_table, silicon_supercell
from repro.neighbors import neighbor_list
from repro.parallel import MachineSpec, partition_pairs
from repro.parallel.decomposition import (
    partition_imbalance, replicated_h_comm_bytes, row_striped_comm_bytes,
)
from repro.tb import GSPSilicon

PROCS = (2, 4, 8, 16, 32, 64)
N_ATOMS = 216
M_ORB = 4 * N_ATOMS


def test_a1_assembly_communication(benchmark):
    machine = MachineSpec.paragon()
    rows = []
    for p in PROCS:
        rep = replicated_h_comm_bytes(M_ORB, p)
        strip = row_striped_comm_bytes(M_ORB, p)
        t_rep = (p - 1) * machine.latency + \
            (p - 1) / p * (rep * p) / machine.bandwidth
        t_strip = 2 * (machine.latency + strip / machine.bandwidth)
        rows.append([p, rep / 1e6, strip / 1e6, t_rep * 1e3, t_strip * 1e3,
                     rep / strip])
    print_table(
        f"A1: H-assembly communication per step, N={N_ATOMS} (M={M_ORB})",
        ["P", "replicated MB/rank", "striped MB/rank",
         "t_rep (ms)", "t_strip (ms)", "ratio"],
        rows, float_fmt="{:.4g}")

    # load imbalance of the owner-i pair distribution
    at = silicon_supercell(3, rattle_amp=0.05, seed=9)
    nl = neighbor_list(at, GSPSilicon().cutoff)
    imb = {p: partition_imbalance(partition_pairs(nl, p, scheme="owner-i"))
           for p in (4, 16, 64)}
    imb_block = {p: partition_imbalance(partition_pairs(nl, p, scheme="block"))
                 for p in (4, 16, 64)}
    print_table(
        "A1b: pair-distribution load imbalance (max/mean)",
        ["P", "owner-i", "block"],
        [[p, imb[p], imb_block[p]] for p in (4, 16, 64)],
        float_fmt="{:.3f}")

    # --- shape assertions -------------------------------------------------
    for row in rows:
        assert row[5] > 1.5, "striping must move fewer bytes"
    assert all(v >= 1.0 for v in imb.values())
    assert all(imb_block[p] <= imb[p] + 1e-9 for p in imb_block)

    benchmark.pedantic(
        lambda: partition_pairs(nl, 16, scheme="owner-i"),
        rounds=3, iterations=1)

"""A12 — The binary trajectory store vs extended-XYZ.

Long production MD runs live or die on trajectory I/O: an ASCII
``%18.10f`` XYZ frame costs ~100 bytes per atom per frame and a full
re-parse per read, while the PTRJ chunked binary format
(:mod:`repro.trajio`) stores float32 position deltas off per-chunk
float64 keyframes (hard 1e-6 Å reconstruction bound), per-frame
cells/velocities/metadata exactly, and a footer index for O(chunk)
random access.

This benchmark writes the same synthetic thermal trajectory both ways
and asserts the PR's acceptance criteria (skipped in ``--quick``
smoke mode):

1. PTRJ file ≥ 3× smaller than the equivalent extended-XYZ —
   the honest floor for a format that keeps exact f8 velocities and
   the 1e-6 Å position bound (measured ~11× with velocity columns,
   ~5-6× positions-only; see docs/trajectories.md),
2. full-trajectory read ≥ 10× faster than parsing the XYZ back,
3. random access of one frame decodes exactly one chunk
   (``trajio.chunk_reads``), independent of trajectory length.

The measured ratios are published as the ``trajio.xyz_size_ratio`` and
``trajio.read_speedup`` gauges; the CI bench-smoke job gates the size
ratio via ``tools/check_metrics.py --min-traj-size-ratio``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import obs
from repro.bench import print_table, silicon_supercell
from repro.geometry import write_xyz
from repro.geometry.xyz import iread_xyz
from repro.md import Trajectory
from repro.obs import metrics as metrics_mod
from repro.trajio import TrajectoryReader, TrajectoryWriter

NFRAMES = 200
MULTIPLIER = 4          # 512 atoms
SIGMA = 0.05            # Å of thermal motion per frame
SIZE_FLOOR = 3.0
READ_FLOOR = 10.0


def _write_both(tmp_path, nframes: int, multiplier: int):
    """The same drifting trajectory as .ptrj and .xyz files."""
    at = silicon_supercell(multiplier, rattle_amp=0.02, seed=3)
    rng = np.random.default_rng(42)
    at.velocities[:] = rng.normal(scale=0.02, size=at.velocities.shape)
    ptrj = os.path.join(tmp_path, "traj.ptrj")
    xyz = os.path.join(tmp_path, "traj.xyz")
    t_ptrj = t_xyz = 0.0
    with TrajectoryWriter(ptrj) as w:
        for k in range(nframes):
            at.positions += rng.normal(scale=SIGMA,
                                       size=at.positions.shape)
            meta = dict(step=k, time_fs=0.5 * k, epot=-34.0 - 1e-3 * k)
            t0 = time.perf_counter()
            w.write(at, **meta)
            t_ptrj += time.perf_counter() - t0
            t0 = time.perf_counter()
            write_xyz(xyz, at, append=k > 0,
                      comment=f"step={k} time_fs={0.5 * k!r}")
            t_xyz += time.perf_counter() - t0
    return ptrj, xyz, len(at), t_ptrj, t_xyz


def test_a12_trajio_size_and_read_speed(tmp_path, quick):
    nframes = 20 if quick else NFRAMES
    multiplier = 2 if quick else MULTIPLIER

    ptrj, xyz, natoms, t_wb, t_wx = _write_both(
        str(tmp_path), nframes, multiplier)
    size_ptrj = os.path.getsize(ptrj)
    size_xyz = os.path.getsize(xyz)
    size_ratio = size_xyz / size_ptrj

    # full-trajectory read: decode every frame's positions
    t0 = time.perf_counter()
    with TrajectoryReader(ptrj) as r:
        checksum_b = sum(float(fr.positions.sum()) for fr in r)
        nchunks = r.nchunks
    t_read_ptrj = time.perf_counter() - t0

    t0 = time.perf_counter()
    checksum_x = sum(float(fr.positions.sum()) for fr in iread_xyz(xyz))
    t_read_xyz = time.perf_counter() - t0
    read_speedup = t_read_xyz / t_read_ptrj

    # positions agree within the delta-encoding bound (XYZ keeps
    # %18.10f columns, so its own rounding is ~1e-10 per coordinate)
    assert abs(checksum_b - checksum_x) / (nframes * natoms * 3) < 2e-6

    # random access decodes exactly one chunk, wherever the frame is
    registry = metrics_mod.get_registry()
    with TrajectoryReader(ptrj) as r:
        before = registry.snapshot()["counters"].get(
            "trajio.chunk_reads", 0.0)
        r.read(nframes // 2)
        after = registry.snapshot()["counters"].get(
            "trajio.chunk_reads", 0.0)
    chunk_reads = after - before

    obs.gauge_set("trajio.xyz_size_ratio", size_ratio)
    obs.gauge_set("trajio.read_speedup", read_speedup)

    print_table(
        f"A12 — trajectory store ({natoms} atoms × {nframes} frames, "
        f"{nchunks} chunks)",
        ["format", "size (MB)", "write (s)", "full read (s)"],
        [["PTRJ", f"{size_ptrj / 1e6:.2f}", f"{t_wb:.3f}",
          f"{t_read_ptrj:.3f}"],
         ["XYZ", f"{size_xyz / 1e6:.2f}", f"{t_wx:.3f}",
          f"{t_read_xyz:.3f}"],
         ["ratio", f"{size_ratio:.2f}x", "-",
          f"{read_speedup:.2f}x"]])

    # -- acceptance criteria (perf bar skipped in --quick smoke mode) ------
    if metrics_mod.metrics_enabled():
        assert chunk_reads == 1.0
    if not quick:
        assert size_ratio >= SIZE_FLOOR
        assert read_speedup >= READ_FLOOR


def test_a12_round_trip_parity(tmp_path, quick):
    """Binary save/load preserves what XYZ used to drop."""
    nframes = 6
    at = silicon_supercell(2, rattle_amp=0.02, seed=5)
    rng = np.random.default_rng(9)
    at.velocities[:] = rng.normal(scale=0.02, size=at.velocities.shape)
    traj = Trajectory()
    for k in range(nframes):
        at.positions += rng.normal(scale=SIGMA, size=at.positions.shape)
        traj.append(at, step=k, time_fs=0.5 * k, epot=-34.0 - k)
    p = os.path.join(str(tmp_path), "t.ptrj")
    traj.save(p)
    back = Trajectory.load(p)
    assert len(back) == nframes
    for k in range(nframes):
        f, g = traj.frames[k], back.frames[k]
        assert f.step == g.step and f.time_fs == g.time_fs
        assert f.epot == g.epot
        np.testing.assert_array_equal(f.velocities, g.velocities)
        assert np.abs(f.positions - g.positions).max() <= 1e-6

"""A10 — k-point-parallel FOE vs dense k-diagonalisation.

The k subsystem's contract: on small-cell metals the O(N) engine and
exact k-diagonalisation must agree at matched settings (forces to
~1e-6 eV/Å), and the k fast path (cached bond pattern, per-k spectral
windows, warm common μ, fused single-pass solve) must make repeated
MD-like evaluations measurably cheaper than rebuilding everything per
step.  This benchmark measures, on β-tin silicon supercells
(the canonical metallic Si phase):

1. per-step wall time of dense k-diag vs k-FOE cold (``reuse=False``)
   vs k-FOE warm (the fast path), over a short MD-like trajectory;
2. the force deviation between the two engines at the benchmark order;
3. the warm/cold reuse speedup.

Dense complex diagonalisation scales O(n_k·M³) against the engine's
O(n_k·R·n_loc²·K), so the dense path wins at these tiny M — the point
of the measurement is the *accuracy parity* and the *reuse payoff*, and
the table records the trend toward the crossover as cells grow (the Γ
crossover itself is bench A7's business).
"""

import time

import numpy as np

from repro.bench import print_table
from repro.geometry import beta_tin_silicon, rattle, supercell
from repro.linscale import LinearScalingCalculator
from repro.tb import GSPSilicon, TBCalculator

KT = 0.25
ORDER = 250
R_LOC = 7.5     # covers the folded cell at both sizes: zero halo truncation,
                # so the comparison is at genuinely matched accuracy
KGRID = 2
REPS = ((1, 1, 2), (2, 2, 1))     # 8 and 16 atoms
STEPS = 3
FORCE_TOL = 5e-6

QUICK_ORDER = 100
QUICK_REPS = ((1, 1, 2),)
QUICK_STEPS = 2


def _metal_cell(reps):
    return rattle(supercell(beta_tin_silicon(), reps), 0.04, seed=17)


def _trajectory(n_atoms, steps):
    rng = np.random.default_rng(3)
    return [0.01 * rng.normal(size=(n_atoms, 3)) for _ in range(steps)]


def _run_steps(calc, atoms, deltas):
    """Per-step wall times of an MD-like displacement sequence."""
    times = []
    last = None
    for delta in deltas:
        t0 = time.perf_counter()
        last = calc.compute(atoms, forces=True)
        times.append(time.perf_counter() - t0)
        atoms.positions += delta
    return times, last


def test_a10_kfoe_vs_dense_kdiag(benchmark, quick):
    order = QUICK_ORDER if quick else ORDER
    reps_list = QUICK_REPS if quick else REPS
    steps = QUICK_STEPS if quick else STEPS

    rows = []
    for reps in reps_list:
        base = _metal_cell(reps)
        n = len(base)
        deltas = _trajectory(n, steps)

        diag = TBCalculator(GSPSilicon(), kpts=KGRID, kT=KT)
        t_diag, res_diag = _run_steps(diag, _metal_cell(reps), deltas)

        cold = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                       order=order, kpts=KGRID,
                                       reuse=False)
        t_cold, _ = _run_steps(cold, _metal_cell(reps), deltas)
        cold.close()

        warm = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                       order=order, kpts=KGRID)
        t_warm, res_warm = _run_steps(warm, _metal_cell(reps), deltas)
        report = warm.state_report()
        warm.close()

        # force parity at the *final* common geometry of the sequence
        df = np.abs(res_warm["forces"] - res_diag["forces"]).max()
        rows.append([n, res_warm["n_kpoints"],
                     np.mean(t_diag), np.mean(t_cold),
                     np.mean(t_warm[1:]) if steps > 1 else t_warm[0],
                     np.mean(t_cold) / (np.mean(t_warm[1:])
                                        if steps > 1 else t_warm[0]),
                     df])

    print_table(
        f"A10: k-FOE vs dense k-diag on β-tin Si metal "
        f"({KGRID}³ MP grid TR-reduced, order={order}, kT={KT} eV, "
        f"{steps} MD-like steps)",
        ["N", "n_k", "t_diag/step (s)", "t_kfoe cold (s)",
         "t_kfoe warm (s)", "reuse speedup", "max |ΔF| (eV/Å)"],
        rows, float_fmt="{:.3g}")
    print(f"  warm-path reuse report: {report['hamiltonian']}, "
          f"foe={report['foe']}")

    for row in rows:
        assert np.isfinite(row[6])
        if not quick:
            # matched force accuracy between the two engines
            assert row[6] < FORCE_TOL, \
                f"k-FOE forces deviate {row[6]:.2e} eV/Å from dense k-diag"
            # the fast path must beat rebuild-everything per step
            assert row[5] > 1.0, \
                "warm k fast path must not be slower than the cold k solve"
    if not quick:
        # the pattern must have been built exactly once across the run
        assert report["hamiltonian"]["pattern_builds"] == 1
        assert report["foe"]["fused"] + report["foe"]["fallback"] >= 1

    at = _metal_cell(reps_list[0])
    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                   order=order, kpts=KGRID)
    calc.compute(at, forces=True)          # prime the caches
    rng = np.random.default_rng(7)

    def warm_step():
        at.positions += 0.005 * rng.normal(size=at.positions.shape)
        calc.compute(at, forces=True)

    benchmark.pedantic(warm_step, rounds=3, iterations=1)
    calc.close()

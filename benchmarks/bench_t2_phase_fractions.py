"""T2 — Phase-fraction crossover: the O(N³) diagonalisation wall.

Reproduces the fraction-of-step-time table that motivates parallel TBMD:
as N grows, the diagonalisation share marches toward 100 % while the
O(N) phases (neighbours, H build, pair forces) fade.  Expected shape:
monotone growth of the diag share with N.
"""

from repro.bench import print_table, silicon_supercell
from repro.geometry import rattle
from repro.tb import GSPSilicon, TBCalculator

MULTIPLIERS = (1, 2, 3)
PHASES = ("neighbors", "hamiltonian", "diagonalize", "forces", "repulsive")


def fractions_for(multiplier: int) -> dict:
    at = silicon_supercell(multiplier, rattle_amp=0.05, seed=1)
    calc = TBCalculator(GSPSilicon())
    calc.compute(at, forces=True)
    calc.timer.reset()
    for rep in range(2):
        calc.compute(rattle(at, 0.03, seed=rep + 7), forces=True)
    total = sum(calc.timer.elapsed(p) for p in PHASES) or 1.0
    out = {p: calc.timer.elapsed(p) / total for p in PHASES}
    out["natoms"] = len(at)
    return out


def test_t2_diagonalisation_share_grows(benchmark):
    rows = [fractions_for(m) for m in MULTIPLIERS]
    print_table(
        "T2: fraction of step time by phase",
        ["N", *PHASES],
        [[r["natoms"]] + [r[p] for p in PHASES] for r in rows],
        float_fmt="{:.3f}")

    shares = [r["diagonalize"] for r in rows]
    assert shares == sorted(shares), "diag share must grow with N"
    assert shares[-1] > 0.3

    # benchmark the diagonalisation kernel itself at 216 atoms
    from repro.neighbors import neighbor_list
    from repro.tb.eigensolvers import solve_eigh
    from repro.tb.hamiltonian import build_hamiltonian

    at = silicon_supercell(3, rattle_amp=0.05, seed=2)
    model = GSPSilicon()
    H, _ = build_hamiltonian(at, model, neighbor_list(at, model.cutoff))
    benchmark.pedantic(lambda: solve_eigh(H), rounds=3, iterations=1)

"""F9 — Vibrational and elastic validation: dynamical matrix vs VACF,
cubic elastic constants.

The mechanical-properties panel of a TBMD validation section:

* Γ phonons of the Si64 supercell from the finite-difference dynamical
  matrix, cross-checked against the VACF spectrum of an MD run — two
  independent routes through the same force field must agree on the
  spectral range (silicon optical phonon: 15.5 THz experimentally; GSP
  runs a little stiff);
* cubic elastic constants C11/C12/C44 with internal relaxation for C44
  (the Kleinman term), Born stability, and the B = (C11+2C12)/3 identity
  against the EOS calibration.
"""

import numpy as np

from repro.analysis.elastic import born_stability_cubic, cubic_elastic_constants
from repro.analysis.phonons import gamma_frequencies, phonon_dos_from_frequencies
from repro.analysis.vacf import phonon_dos
from repro.bench import print_table, silicon_supercell
from repro.classical import StillingerWeber
from repro.md import (
    MDDriver, TrajectoryRecorder, VelocityVerlet, maxwell_boltzmann_velocities,
)
from repro.tb import GSPSilicon, TBCalculator


def test_f9_phonons_and_elastic(benchmark):
    # --- phonons: dynamical matrix route ------------------------------------
    at = silicon_supercell(2)
    nu, _ = gamma_frequencies(at, TBCalculator(GSPSilicon()),
                              displacement=0.02)
    nu_max = float(nu.max())
    f_dm, dos_dm = phonon_dos_from_frequencies(nu)

    # --- phonons: VACF route ----------------------------------------------------
    md_at = silicon_supercell(2)
    maxwell_boltzmann_velocities(md_at, 300.0, seed=19)
    rec = TrajectoryRecorder()
    MDDriver(md_at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0),
             observers=[rec]).run(800)
    freq, dos = phonon_dos(rec.trajectory.velocities(), dt_fs=1.0,
                           max_lag=300)
    # a single short trajectory leaves a flat noise floor at high
    # frequency, so compare the *dominant spectral peak* (robust) rather
    # than a percentile of the weight
    vacf_peak = float(freq[np.argmax(dos)])

    # --- elastic constants ----------------------------------------------------------
    ec_tb = cubic_elastic_constants(silicon_supercell(2),
                                    lambda: TBCalculator(GSPSilicon()))
    ec_sw = cubic_elastic_constants(silicon_supercell(1), StillingerWeber)

    print_table(
        "F9a: Si vibrational spectrum, two routes (THz)",
        ["quantity", "dynamical matrix", "VACF"],
        [["spectral top / dominant peak", nu_max, vacf_peak],
         ["acoustic zeros (|ν|max of 3)", float(np.abs(nu[:3]).max()), "-"]],
        float_fmt="{:.2f}")

    print_table(
        "F9b: cubic elastic constants (GPa)",
        ["model", "C11", "C12", "C44", "C44 unrelaxed", "B=(C11+2C12)/3"],
        [["GSP TB (Si64)", ec_tb["c11_gpa"], ec_tb["c12_gpa"],
          ec_tb["c44_gpa"], ec_tb["c44_unrelaxed_gpa"],
          ec_tb["bulk_modulus_gpa"]],
         ["SW classical", ec_sw["c11_gpa"], ec_sw["c12_gpa"],
          ec_sw["c44_gpa"], ec_sw["c44_unrelaxed_gpa"],
          ec_sw["bulk_modulus_gpa"]],
         ["experiment", 165.8, 63.9, 79.6, "-", 97.9]],
        float_fmt="{:.1f}")

    # --- shape assertions -------------------------------------------------
    assert np.abs(nu[:3]).max() < 0.05            # acoustic sum rule
    assert 13.0 < nu_max < 21.0                   # optical-phonon scale
    # the VACF's dominant peak sits inside (and near the top of) the
    # dynamical-matrix band
    assert 0.5 * nu_max < vacf_peak < 1.2 * nu_max
    for ec in (ec_tb, ec_sw):
        assert born_stability_cubic(ec["c11"], ec["c12"], ec["c44"])
        assert ec["c11_gpa"] > ec["c12_gpa"] > 0
        assert ec["c44_unrelaxed_gpa"] > ec["c44_gpa"]
    assert abs(ec_tb["bulk_modulus_gpa"] - 98.0) < 15.0
    assert abs(ec_sw["c11_gpa"] - 161.6) / 161.6 < 0.10

    benchmark.pedantic(
        lambda: gamma_frequencies(silicon_supercell(1),
                                  TBCalculator(GSPSilicon())),
        rounds=2, iterations=1)

"""F6 — Cohesive energy vs volume for silicon polytypes.

The standard GSP validation figure: Birch–Murnaghan E(V) curves for
diamond, β-tin, simple-cubic, bcc and fcc silicon.  Expected shape:
diamond is the ground state at its experimental volume (≈20 Å³/atom,
E_coh ≈ −4.63 eV); the compact metallic phases lie ~0.2–0.6 eV higher at
smaller volumes, ordered roughly β-tin < sc < bcc/fcc — the energy
ladder every sp³ TB parametrisation is judged on.
"""

import numpy as np

from repro.analysis import birch_murnaghan_fit
from repro.bench import print_table
from repro.geometry import bcc, beta_tin_silicon, bulk_silicon, fcc, simple_cubic
from repro.geometry.transform import scale_volume
from repro.tb import GSPSilicon, TBCalculator

ATOM_REF = 2 * (-5.25) + 2 * 1.20      # free-atom band reference (eV)

# Base geometries are placed near each phase's minimum of THIS model
# (the repulsive refit, pinned to diamond only, pushes the metallic
# minima to larger volumes than DFT finds — recorded in EXPERIMENTS.md).
PHASES = {
    "diamond": (lambda: bulk_silicon(), (3, 3, 3), 0.02),
    "beta-tin": (lambda: beta_tin_silicon(a=5.24), (4, 4, 6), 0.10),
    "sc": (lambda: simple_cubic("Si", a=2.59), (6, 6, 6), 0.10),
    "bcc": (lambda: bcc("Si", a=3.63), (6, 6, 6), 0.10),
    "fcc": (lambda: fcc("Si", a=4.83), (5, 5, 5), 0.10),
}


def eos_curve(builder, kpts, kT, scale_range=(-0.12, 0.12), npts=9):
    base = builder()
    volumes, energies = [], []
    for s in np.linspace(*scale_range, npts):
        at = scale_volume(base, 1.0 + s)
        calc = TBCalculator(GSPSilicon(), kpts=kpts, kT=kT)
        e = calc.get_potential_energy(at) / len(at)
        volumes.append(at.cell.volume / len(at))
        energies.append(e - ATOM_REF)
    return np.array(volumes), np.array(energies)


def test_f6_silicon_phase_ordering(benchmark):
    fits = {}
    for name, (builder, kpts, kT) in PHASES.items():
        v, e = eos_curve(builder, kpts, kT)
        fits[name] = birch_murnaghan_fit(v, e)

    print_table(
        "F6: Birch–Murnaghan fits per silicon polytype (per atom)",
        ["phase", "V0 (Å³)", "Ecoh (eV)", "B0 (GPa)", "B0'"],
        [[name, f.v0, f.e0, f.b0_gpa, f.b0_prime]
         for name, f in fits.items()],
        float_fmt="{:.4g}")

    dia = fits["diamond"]
    # --- shape assertions -------------------------------------------------
    assert dia.e0 == pytest.approx(-4.63, abs=0.08)
    assert dia.v0 == pytest.approx(5.431**3 / 8, rel=0.03)
    # the repulsion was calibrated to B0 = 98 GPa with a harmonic 3-point
    # stencil; the wide-window anharmonic Birch fit lands higher — accept
    # the right order of magnitude (recorded in EXPERIMENTS.md)
    assert 70.0 < dia.b0_gpa < 150.0
    # diamond is the ground state; higher-coordination phases lie above
    for name, f in fits.items():
        if name != "diamond":
            assert f.e0 > dia.e0 + 0.05, f"{name} must lie above diamond"
        assert f.residual < 0.02, f"{name} fit must bracket its minimum"
    # the metallic ladder: β-tin/sc below bcc/fcc (fourfold → sixfold →
    # close-packed ordering of sp³ TB)
    assert max(fits["beta-tin"].e0, fits["sc"].e0) < \
        min(fits["bcc"].e0, fits["fcc"].e0)

    benchmark.pedantic(
        lambda: eos_curve(*PHASES["diamond"], npts=5), rounds=1, iterations=1)


import pytest  # noqa: E402

"""A9 — The batch-service payoff: resident state vs one-shot CLI runs.

The ROADMAP north star is serving heavy traffic: many structures, each
evaluated repeatedly as clients stream updated positions (MD loops,
relaxations, parameter sweeps).  A one-shot ``repro.cli energy`` call
pays the full cold start per evaluation — interpreter + imports, XYZ
parse, calculator construction, neighbour lists, sparse-H pattern,
localization regions, Lanczos window, two-pass FOE.  The batch service
(:mod:`repro.service`) pays it once per structure: sticky routing keeps
each structure on the worker whose calculator already holds that state,
so every later evaluation rides the PR-2 fast path (value-only H
rewrite, cached regions/window, warm μ, fused single-pass FOE).

This benchmark drives N_STRUCTURES × N_EVALS evaluations both ways and
asserts the acceptance criteria:

1. ≥ 3× throughput via the batch service vs sequential one-shot CLI
   runs (real ``python -m repro.cli`` subprocesses, measured on a
   subset and extrapolated linearly — one-shot runs are independent by
   construction, so sequential total time is additive);
2. per-structure forces bit-for-bit equal to a standalone calculator
   driven through the identical position sequence (after the first
   evaluation, i.e. on the state-reuse path).

An in-process one-shot baseline (same cold work, no interpreter
startup) is also reported as the conservative lower bound on the
speedup.
"""

from __future__ import annotations

import contextlib
import io
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.bench import print_table, silicon_supercell
from repro.calculators import make_calculator
from repro.geometry import write_xyz
from repro.service import BatchClient, BatchService

CALC_SPEC = {"model": "gsp-si", "solver": "linscale", "kT": 0.3,
             "order": 80, "r_loc": 5.0}
MULTIPLIER = 2              # 64-atom Si per structure
JIG_AMP = 0.004             # Å per eval — MD-step-sized drift


def _structures(n: int):
    return [silicon_supercell(MULTIPLIER, rattle_amp=0.03, seed=100 + k)
            for k in range(n)]


def _position_sequences(structs, n_evals: int):
    """Per-structure position streams (eval 0 = as loaded)."""
    seqs = []
    for k, at in enumerate(structs):
        rng = np.random.default_rng(7000 + k)
        pos, seq = at.positions.copy(), []
        for _ in range(n_evals):
            seq.append(pos.copy())
            pos = pos + rng.normal(0.0, JIG_AMP, pos.shape)
        seqs.append(seq)
    return seqs


def _cli_args(xyz_path: str) -> list[str]:
    return ["energy", xyz_path, "--solver", CALC_SPEC["solver"],
            "--kt", str(CALC_SPEC["kT"]), "--order",
            str(CALC_SPEC["order"]), "--r-loc", str(CALC_SPEC["r_loc"])]


def _oneshot_subprocess(xyz_path: str) -> None:
    env = dict(os.environ)
    src = str(Path(repro.__file__).parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run([sys.executable, "-m", "repro.cli", *_cli_args(xyz_path)],
                   env=env, capture_output=True, check=True)


def _oneshot_inprocess(xyz_path: str) -> None:
    from repro import cli

    with contextlib.redirect_stdout(io.StringIO()):
        assert cli.main(_cli_args(xyz_path)) == 0


def test_a9_service_throughput(benchmark, quick, tmp_path):
    n_structures = 4 if quick else 16
    n_evals = 4 if quick else 20
    n_sub_structs, n_sub_evals = (1, 2) if quick else (2, 10)

    structs = _structures(n_structures)
    seqs = _position_sequences(structs, n_evals)
    n_total = n_structures * n_evals

    # -- batch service: load once, stream position updates ----------------
    service = BatchService(nworkers=2, debug_ops=False)
    client = BatchClient(service)
    forces_seen: dict[int, list[np.ndarray]] = {0: [], n_structures - 1: []}
    t0 = time.perf_counter()
    for k, at in enumerate(structs):
        client.load(f"s{k}", at, calc=CALC_SPEC)
    for round_ in range(n_evals):
        out = client.evaluate_many(
            [{"structure_id": f"s{k}", "positions": seqs[k][round_]}
             for k in range(n_structures)])
        for k in forces_seen:
            forces_seen[k].append(out[k]["forces"])
    t_service = time.perf_counter() - t0
    stats = service.stats()

    # -- sequential one-shot CLI baseline ----------------------------------
    # real subprocesses on a subset; sequential one-shot totals are
    # additive, so the per-eval mean extrapolates to all evaluations
    n_sub = 0
    t0 = time.perf_counter()
    for k in range(n_sub_structs):
        for r in range(n_sub_evals):
            xyz = tmp_path / f"sub_{k}_{r}.xyz"
            at = structs[k].copy()
            at.positions[:] = seqs[k][r]
            write_xyz(xyz, at)
            _oneshot_subprocess(str(xyz))
            n_sub += 1
    t_cli_per_eval = (time.perf_counter() - t0) / n_sub
    t_cli_total = t_cli_per_eval * n_total

    # in-process one-shot (no interpreter startup): conservative bound
    t0 = time.perf_counter()
    for r in range(n_sub_evals):
        xyz = tmp_path / f"inproc_{r}.xyz"
        at = structs[0].copy()
        at.positions[:] = seqs[0][r]
        write_xyz(xyz, at)
        _oneshot_inprocess(str(xyz))
    t_inproc_per_eval = (time.perf_counter() - t0) / n_sub_evals
    t_inproc_total = t_inproc_per_eval * n_total

    speedup_cli = t_cli_total / t_service
    speedup_inproc = t_inproc_total / t_service

    # -- state-reuse parity: bit-for-bit vs a standalone calculator --------
    fmax_diff = 0.0
    for k, rows in forces_seen.items():
        calc = make_calculator(CALC_SPEC)
        at = structs[k].copy()
        for r in range(n_evals):
            at.positions[:] = seqs[k][r]
            ref = calc.compute(at, forces=True)["forces"]
            diff = float(np.abs(rows[r] - ref).max())
            if r >= 1:          # acceptance: after the first evaluation
                assert np.array_equal(rows[r], ref), \
                    f"structure {k} eval {r}: service forces deviate " \
                    f"by {diff:.3e} from the standalone calculator"
            fmax_diff = max(fmax_diff, diff)

    hit = stats["state_reuse"]
    rows = [
        ["batch service (measured)", t_service, t_service / n_total,
         n_total / t_service],
        ["one-shot CLI (subprocess)", t_cli_total, t_cli_per_eval,
         1.0 / t_cli_per_eval],
        ["one-shot in-process", t_inproc_total, t_inproc_per_eval,
         1.0 / t_inproc_per_eval],
    ]
    print_table(
        f"A9: {n_structures} structures x {n_evals} evaluations, "
        f"{len(structs[0])}-atom Si (linscale, order "
        f"{CALC_SPEC['order']}, kT {CALC_SPEC['kT']} eV)",
        ["path", "total s", "s/eval", "evals/s"], rows,
        float_fmt="{:.3f}")
    print(f"speedup vs one-shot CLI       : {speedup_cli:.2f}x "
          f"(extrapolated from {n_sub} real subprocess runs)")
    print(f"speedup vs in-process one-shot: {speedup_inproc:.2f}x")
    print(f"state-reuse hit rate          : {hit['hit_rate']} "
          f"({hit['warm_evals']} warm / {hit['cold_evals']} cold)")
    print(f"max |F_service - F_standalone|: {fmax_diff:.3e} eV/Å "
          f"(bit-for-bit after first eval)")
    print(f"p50/p99 request latency       : "
          f"{stats['latency_ms']['p50']} / {stats['latency_ms']['p99']} ms")
    service.close()

    assert hit["warm_evals"] == n_total - n_structures
    if not quick:
        assert speedup_cli >= 3.0, \
            f"batch service only {speedup_cli:.2f}x faster than " \
            f"sequential one-shot CLI runs"

    # steady-state batched round as the headline number
    service2 = BatchService(nworkers=2)
    client2 = BatchClient(service2)
    for k in range(n_structures):
        client2.load(f"s{k}", structs[k], calc=CALC_SPEC)
    client2.evaluate_many([{"structure_id": f"s{k}"}
                           for k in range(n_structures)])
    state = {"rng": np.random.default_rng(5)}

    def one_round():
        reqs = [{"structure_id": f"s{k}",
                 "positions": structs[k].positions
                 + state["rng"].normal(0, JIG_AMP,
                                       structs[k].positions.shape)}
                for k in range(n_structures)]
        client2.evaluate_many(reqs)

    benchmark.pedantic(one_round, rounds=2, iterations=1)
    service2.close()

"""F2 — Parallel efficiency and weak scaling.

Two panels of the canonical figure:

* strong-scaling efficiency S/P vs P — decays with P, slower for
  larger N;
* weak scaling (atoms/processor fixed): even perfect parallelisation of
  an O(N³) method degrades as P² — the quantitative argument for O(N)
  methods that closes every 1990s TBMD paper.
"""

from repro.bench import print_table
from repro.parallel import strong_scaling, weak_scaling

PROCS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_f2_efficiency_and_weak_scaling(paragon_model, benchmark):
    rows_64 = strong_scaling(paragon_model, 64, PROCS, diag="distributed")
    rows_512 = strong_scaling(paragon_model, 512, PROCS, diag="distributed")
    print_table(
        "F2a: strong-scaling efficiency (distributed diag)",
        ["P", "eff(N=64)", "eff(N=512)", "comm_frac(N=64)"],
        [[p, a["efficiency"], b["efficiency"], a["comm_fraction"]]
         for p, a, b in zip(PROCS, rows_64, rows_512)],
        float_fmt="{:.3f}")

    weak = weak_scaling(paragon_model, 32, PROCS, diag="distributed")
    print_table(
        "F2b: weak scaling, 32 atoms/processor",
        ["P", "N", "t (s)", "efficiency"],
        [[r["nproc"], r["natoms"], r["time"], r["efficiency"]] for r in weak],
        float_fmt="{:.4g}")

    # --- shape assertions -------------------------------------------------
    eff_64 = [r["efficiency"] for r in rows_64]
    eff_512 = [r["efficiency"] for r in rows_512]
    assert all(b <= a + 1e-9 for a, b in zip(eff_64, eff_64[1:]))
    # at scale (P ≥ 32) the larger system is the more efficient one —
    # below that the Jacobi flop penalty (worse for diag-dominated large
    # N) and the latency penalty (worse for small N) trade places
    for p, e64, e512 in zip(PROCS, eff_64, eff_512):
        if p >= 32:
            assert e512 >= e64, f"large system must win at P={p}"

    weak_eff = [r["efficiency"] for r in weak]
    assert all(b < a for a, b in zip(weak_eff, weak_eff[1:]))
    # O(N³): doubling P (hence N) should cost ≫ 2× — check super-linear decay
    assert weak_eff[3] < 0.5 * weak_eff[0]

    benchmark.pedantic(lambda: weak_scaling(paragon_model, 32, PROCS),
                       rounds=3, iterations=1)

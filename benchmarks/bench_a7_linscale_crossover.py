"""A7 — The O(N) payoff: FOE-in-regions vs dense diagonalisation.

The whole point of the localization-region subsystem: per-region work is
independent of system size (fixed ``r_loc`` and expansion order), so a
full energy+forces evaluation costs O(N) while the LAPACK path pays
O(N³) in the eigensolve and the dense density-matrix contraction.  This
benchmark measures both engines on growing diamond-Si supercells and

1. fits the measured cost exponents (linscale must come out ~linear,
   exponent < 1.3),
2. locates the measured crossover size where the O(N) engine overtakes
   exact diagonalisation,
3. cross-checks accuracy against LAPACK at the benchmark settings.

Expected shape: linscale exponent near 1; the diag exponent is ~1.7–2.1
at these sizes (the O(N³) eigensolve only just starting to dominate the
O(N²) assembly terms) but clearly separated from linear; crossover
within the sizes measured here — hundreds of atoms, exactly where the
1990s O(N) papers put it.
"""

import time

import numpy as np

from repro.bench import print_table, silicon_supercell
from repro.linscale import LinearScalingCalculator
from repro.tb import GSPSilicon, TBCalculator

KT = 0.2
R_LOC = 5.0
ORDER = 120
LIN_MULTIPLIERS = (2, 3, 4, 5)   # 64 … 1000 atoms
DIAG_MULTIPLIERS = (2, 3, 4, 5)

# --quick smoke mode: two tiny sizes, low order, no perf assertions
QUICK_ORDER = 60
QUICK_MULTIPLIERS = (1, 2)


def _timed_compute(calc, atoms):
    t0 = time.perf_counter()
    res = calc.compute(atoms, forces=True)
    return res, time.perf_counter() - t0


def _fit_exponent(ns, ts):
    return float(np.polyfit(np.log(ns), np.log(ts), 1)[0])


def test_a7_linscale_crossover(benchmark, quick):
    order = QUICK_ORDER if quick else ORDER
    lin_multipliers = QUICK_MULTIPLIERS if quick else LIN_MULTIPLIERS
    diag_multipliers = QUICK_MULTIPLIERS if quick else DIAG_MULTIPLIERS
    rows = []
    lin_times: dict[int, float] = {}
    diag_times: dict[int, float] = {}

    for m in sorted(set(lin_multipliers) | set(diag_multipliers)):
        at = silicon_supercell(m, rattle_amp=0.03, seed=13)
        n = len(at)
        t_lin = t_diag = float("nan")
        err = float("nan")
        if m in lin_multipliers:
            lin = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                          order=order)
            res_lin, t_lin = _timed_compute(lin, at)
            lin_times[n] = t_lin
        if m in diag_multipliers:
            diag = TBCalculator(GSPSilicon(), kT=KT)
            res_diag, t_diag = _timed_compute(diag, at)
            diag_times[n] = t_diag
        if m in lin_multipliers and m in diag_multipliers:
            err = abs(res_lin["energy"] - res_diag["energy"]) / n
        rows.append([n, 4 * n, t_diag, t_lin,
                     t_diag / t_lin if t_lin == t_lin else float("nan"), err])

    print_table(
        f"A7a: O(N) FOE-in-regions vs LAPACK "
        f"(r_loc = {R_LOC} Å, order = {order}, kT = {KT} eV)",
        ["N", "M", "t_diag (s)", "t_linscale (s)", "speedup",
         "|ΔE|/atom (eV)"],
        rows, float_fmt="{:.3g}")

    lin_n = np.array(sorted(lin_times))
    lin_t = np.array([lin_times[n] for n in lin_n])
    diag_n = np.array(sorted(diag_times))
    diag_t = np.array([diag_times[n] for n in diag_n])
    p_lin = _fit_exponent(lin_n, lin_t)
    p_diag = _fit_exponent(diag_n, diag_t)

    # crossover from the two power-law fits: t = c · N^p
    c_lin = float(np.exp(np.mean(np.log(lin_t) - p_lin * np.log(lin_n))))
    c_diag = float(np.exp(np.mean(np.log(diag_t) - p_diag * np.log(diag_n))))
    n_star = (c_lin / c_diag) ** (1.0 / (p_diag - p_lin))

    print_table(
        "A7b: fitted cost scaling and measured crossover",
        ["quantity", "value"],
        [["linscale exponent", p_lin],
         ["diag exponent", p_diag],
         ["crossover N* (atoms)", n_star],
         ["largest-cell speedup", diag_t[-1] / lin_t[-1]]],
        float_fmt="{:.4g}")

    # --- shape assertions (skipped in --quick: smoke mode records the
    # trajectory and catches crashes, never perf regressions) --------------
    if not quick:
        assert p_lin < 1.3, f"linscale must scale ~O(N), got N^{p_lin:.2f}"
        assert p_diag > p_lin + 0.4, \
            "dense growth must be clearly separated from the O(N) engine's"
        assert diag_t[-1] > 2.0 * lin_t[-1], \
            "O(N) engine must clearly beat diagonalisation on the largest cell"
        assert n_star < max(diag_n), \
            "measured crossover must lie inside the benchmarked range"
    for row in rows:
        if row[5] == row[5]:  # accuracy cross-check where both ran
            assert row[5] < 0.5, "benchmark settings sanity"

    at = silicon_supercell(2, rattle_amp=0.03, seed=13)
    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                   order=order)
    benchmark.pedantic(
        lambda: (calc.invalidate(), calc.compute(at, forces=True)),
        rounds=3, iterations=1)

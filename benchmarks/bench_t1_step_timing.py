"""T1 — Time per MD step vs system size, with per-phase breakdown.

Reproduces the canonical SC'94 table: wall-clock seconds per TBMD step on
one node for diamond-Si supercells, split into neighbour search /
Hamiltonian build / diagonalisation / force evaluation.  Expected shape:
the diagonalisation column grows as N³ and dominates beyond ~100 atoms.
"""


from repro.bench import print_table, silicon_supercell
from repro.geometry import rattle
from repro.tb import GSPSilicon, TBCalculator

PHASES = ("neighbors", "hamiltonian", "diagonalize", "forces", "repulsive")
MULTIPLIERS = (1, 2, 3)          # 8, 64, 216 atoms


def measure_step(natoms_multiplier: int, repeats: int = 2) -> dict:
    at = silicon_supercell(natoms_multiplier, rattle_amp=0.05, seed=1)
    calc = TBCalculator(GSPSilicon())
    calc.compute(at, forces=True)            # warm-up
    calc.timer.reset()
    for rep in range(repeats):
        calc.compute(rattle(at, 0.03, seed=rep + 2), forces=True)
    row = {ph: calc.timer.elapsed(ph) / repeats for ph in PHASES}
    row["natoms"] = len(at)
    row["total"] = sum(row[ph] for ph in PHASES)
    return row


def test_t1_step_timing_table(benchmark):
    rows = [measure_step(m) for m in MULTIPLIERS]

    table_rows = [[r["natoms"]] + [r[ph] for ph in PHASES] + [r["total"]]
                  for r in rows]
    print_table(
        "T1: seconds per MD step by phase (measured, this host)",
        ["N", *PHASES, "total"], table_rows, float_fmt="{:.3e}")

    # shape assertions: diag grows superlinearly, dominates at 216 atoms
    t_diag = [r["diagonalize"] for r in rows]
    n = [r["natoms"] for r in rows]
    growth = (t_diag[-1] / max(t_diag[0], 1e-12)) / (n[-1] / n[0])
    assert growth > 5.0, "diagonalisation must scale superlinearly"
    assert t_diag[-1] / rows[-1]["total"] > 0.3

    # benchmark a steady-state 64-atom step (the classic per-step number)
    at = silicon_supercell(2, rattle_amp=0.05, seed=3)
    calc = TBCalculator(GSPSilicon())
    calc.compute(at, forces=True)
    state = {"k": 0}

    def one_step():
        state["k"] += 1
        calc.compute(rattle(at, 0.02, seed=state["k"]), forces=True)

    benchmark.pedantic(one_step, rounds=3, iterations=1)

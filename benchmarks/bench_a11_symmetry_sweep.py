"""A11 — symmetry-reduced k wedges and the warm strain-sweep driver.

The acceptance contract of the symmetry subsystem, measured on the
8-atom conventional diamond-Si cell:

1. **wedge reduction** — the crystal-point-group fold of a 4×4×4
   Monkhorst–Pack grid must use ≤ 1/6 the k points of the
   time-reversal-only grid (O_h actually delivers 32 → 4, i.e. 8×, and
   16× against the raw grid);
2. **parity** — energies and forces on the wedge must match the *full*
   grid to ≤ 1e-6 eV/Å on both the exact-diagonalisation and the
   region-FOE solvers (the diag identity holds to round-off; the FOE
   comparison also absorbs its own truncation at matched settings);
3. **warm sweep** — the persistent-state strain-sweep driver
   (:func:`repro.analysis.strain_sweep.strain_sweep`) must be ≥ 1.3×
   faster per steady-state point than cold per-point rebuilds
   (``reuse=False``) on the linscale engine, while agreeing
   point-for-point to 1e-6.  Measured on a 16-atom diamond supercell,
   where the region recursion (what the fused warm solve halves)
   dominates the per-point cost; the warm sweep's first point is its
   one unavoidable cold start and is excluded from the steady state.

``--quick`` shrinks the grid/order and disables the performance
assertions (CI smoke mode).
"""

import time

import numpy as np

from repro.analysis import strain_sweep
from repro.bench import print_table
from repro.geometry import bulk_silicon, supercell
from repro.linscale import LinearScalingCalculator
from repro.tb import GSPSilicon, TBCalculator
from repro.tb.kpoints import monkhorst_pack
from repro.tb.symmetry import crystal_symmetry_ops, irreducible_kpoints

KT = 0.2
KGRID = 4
ORDER = 300
R_LOC = 6.0
SWEEP_KGRID = 2                 # on the 16-atom sweep cell
SWEEP_AMPS = np.linspace(-0.02, 0.02, 9)
FORCE_TOL = 1e-6
SWEEP_SPEEDUP_MIN = 1.3

QUICK_KGRID = 2
QUICK_ORDER = 120
QUICK_AMPS = np.linspace(-0.02, 0.02, 3)


def _wedge_table(kgrid):
    at = bulk_silicon()
    full, _ = monkhorst_pack(kgrid, reduce_time_reversal=False)
    trs, _ = monkhorst_pack(kgrid, reduce_time_reversal=True)
    ops = crystal_symmetry_ops(at)
    wedge = irreducible_kpoints(kgrid, atoms=at, ops=ops)
    return at, len(full), len(trs), len(wedge), len(ops)


def _parity_rows(at, kgrid, order):
    rows = []
    ref = TBCalculator(GSPSilicon(), kpts=kgrid, kT=KT,
                       kgrid_reduce="full").compute(at, forces=True)
    for solver, make in (
        ("diag", lambda red: TBCalculator(GSPSilicon(), kpts=kgrid, kT=KT,
                                          kgrid_reduce=red)),
        ("linscale", lambda red: LinearScalingCalculator(
            GSPSilicon(), kT=KT, r_loc=R_LOC, order=order, kpts=kgrid,
            kgrid_reduce=red)),
    ):
        res = make("symmetry").compute(at, forces=True)
        rows.append([solver, ref["n_kpoints"], res["n_kpoints"],
                     abs(res["energy"] - ref["energy"]) / len(at),
                     np.abs(res["forces"] - ref["forces"]).max()])
    return rows


def _sweep_cell():
    return supercell(bulk_silicon(), (1, 1, 2))      # 16 atoms


def _timed_sweep(reuse, order, amps):
    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                   order=order, kpts=SWEEP_KGRID,
                                   kgrid_reduce="symmetry", reuse=reuse)
    t0 = time.perf_counter()
    res = strain_sweep(_sweep_cell(), calc, amps, fit=None, forces=True)
    dt = time.perf_counter() - t0
    report = calc.state_report()
    calc.close()
    return dt, res, report


def _steady_point_time(result, reuse):
    """Median per-point wall time; the warm sweep's first point is its
    one unavoidable cold start and is excluded from the steady state."""
    times = [p.seconds for p in result.points]
    if reuse and len(times) > 1:
        times = times[1:]
    return float(np.median(times))


def test_a11_symmetry_wedge_and_sweep(benchmark, quick):
    kgrid = QUICK_KGRID if quick else KGRID
    order = QUICK_ORDER if quick else ORDER
    amps = QUICK_AMPS if quick else SWEEP_AMPS

    at, n_full, n_trs, n_wedge, n_ops = _wedge_table(kgrid)
    rows = _parity_rows(at, kgrid, order)
    print_table(
        f"A11a: symmetry parity on 8-atom diamond Si "
        f"({kgrid}³ MP, {n_ops} ops, kT={KT} eV, order={order})",
        ["solver", "n_k full", "n_k wedge", "|ΔE|/atom (eV)",
         "max |ΔF| (eV/Å)"],
        rows, float_fmt="{:.3g}")
    print(f"  grid sizes: full {n_full}, TRS {n_trs}, wedge {n_wedge}")

    # two interleaved rounds per mode (min-of-rounds suppresses the
    # shared-box noise the A8 bench already fights); the speedup is the
    # steady-state per-point ratio — the warm sweep's first point is a
    # cold start by construction
    warm_rounds = []
    cold_rounds = []
    for _ in range(1 if quick else 2):
        warm_rounds.append(_timed_sweep(True, order, amps))
        cold_rounds.append(_timed_sweep(False, order, amps))
    t_warm, r_warm, report = min(warm_rounds, key=lambda r: r[0])
    t_cold, r_cold, _ = min(cold_rounds, key=lambda r: r[0])
    pt_warm = min(_steady_point_time(r, True) for _, r, _ in warm_rounds)
    pt_cold = min(_steady_point_time(r, False) for _, r, _ in cold_rounds)
    speedup = pt_cold / pt_warm
    dmax_e = max(abs(pw.energy - pc.energy)
                 for pw, pc in zip(r_warm.points, r_cold.points))
    dmax_f = max(abs(pw.max_force - pc.max_force)
                 for pw, pc in zip(r_warm.points, r_cold.points))
    print_table(
        f"A11b: warm vs cold strain sweep ({len(amps)} points, linscale, "
        f"16-atom diamond, {SWEEP_KGRID}³ symmetry grid)",
        ["t_warm (s)", "t_cold (s)", "t/point warm (s)", "t/point cold (s)",
         "steady speedup", "max |ΔE/at| (eV)", "max |Δ maxF| (eV/Å)"],
        [[t_warm, t_cold, pt_warm, pt_cold, speedup, dmax_e, dmax_f]],
        float_fmt="{:.3g}")
    print(f"  warm reuse: pattern_builds="
          f"{report['hamiltonian']['pattern_builds']}, foe={report['foe']}")

    # -- acceptance ---------------------------------------------------------
    # quick mode runs at a deliberately unconverged order where the warm
    # (padded) and cold (tight) Chebyshev windows truncate differently;
    # the 1e-6 parity contract is asserted at the converged full order
    assert np.isfinite([p.energy for p in r_warm.points]).all()
    if not quick:
        assert dmax_e < 1e-6 and dmax_f < 1e-6
        # O_h on the 4×4×4 grid: 64 → 32 (TRS) → 4 (wedge), an 8× cut
        assert n_wedge * 6 <= n_trs, \
            f"wedge {n_wedge} must be <= 1/6 of the TRS grid {n_trs}"
        for solver, _, _, de, df in rows:
            assert de < FORCE_TOL, f"{solver} energy parity {de:.2e}"
            assert df < FORCE_TOL, f"{solver} force parity {df:.2e}"
        assert report["hamiltonian"]["pattern_builds"] == 1
        assert speedup >= SWEEP_SPEEDUP_MIN, \
            f"warm sweep speedup {speedup:.2f} < {SWEEP_SPEEDUP_MIN}"

    calc = LinearScalingCalculator(GSPSilicon(), kT=KT, r_loc=R_LOC,
                                   order=order, kpts=SWEEP_KGRID,
                                   kgrid_reduce="symmetry")
    sweep_amps = amps[:3]
    cell = _sweep_cell()

    def warm_sweep():
        strain_sweep(cell, calc, sweep_amps, fit=None, forces=True)

    benchmark.pedantic(warm_sweep, rounds=1, iterations=1)
    calc.close()

"""Shared benchmark fixtures.

The calibration (measured per-phase flop coefficients) is computed once
per session and shared by every parallel-model benchmark, mirroring how
the paper's model parameters were measured once on the target machine.
"""

from __future__ import annotations

import pytest

from repro.parallel import MachineSpec, ReplicatedDataModel, calibrate_step
from repro.tb import GSPSilicon


@pytest.fixture(scope="session")
def calibration():
    """Measured host calibration on 8→64-atom diamond Si."""
    return calibrate_step(GSPSilicon(), sizes=(1, 2), repeats=2)


@pytest.fixture(scope="session")
def paragon_model(calibration):
    return ReplicatedDataModel(calibration, MachineSpec.paragon())


@pytest.fixture(scope="session")
def modern_model(calibration):
    return ReplicatedDataModel(calibration, MachineSpec.modern())

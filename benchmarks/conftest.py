"""Shared benchmark fixtures.

The calibration (measured per-phase flop coefficients) is computed once
per session and shared by every parallel-model benchmark, mirroring how
the paper's model parameters were measured once on the target machine.

``--quick`` switches the A7/A8/A9 benchmarks into a tiny smoke mode:
small systems, few repeats, and **no performance assertions** — the CI
bench-smoke job runs them on every PR to record the perf trajectory
(JSON artifacts) and to catch crashes, not regressions.
"""

from __future__ import annotations

import pytest

from repro.parallel import MachineSpec, ReplicatedDataModel, calibrate_step
from repro.tb import GSPSilicon


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="tiny benchmark smoke mode: small systems, no performance "
             "assertions (crash detection only)")


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def calibration():
    """Measured host calibration on 8→64-atom diamond Si."""
    return calibrate_step(GSPSilicon(), sizes=(1, 2), repeats=2)


@pytest.fixture(scope="session")
def paragon_model(calibration):
    return ReplicatedDataModel(calibration, MachineSpec.paragon())


@pytest.fixture(scope="session")
def modern_model(calibration):
    return ReplicatedDataModel(calibration, MachineSpec.modern())

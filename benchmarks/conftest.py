"""Shared benchmark fixtures.

The calibration (measured per-phase flop coefficients) is computed once
per session and shared by every parallel-model benchmark, mirroring how
the paper's model parameters were measured once on the target machine.

``--quick`` switches the A7/A8/A9 benchmarks into a tiny smoke mode:
small systems, few repeats, and **no performance assertions** — the CI
bench-smoke job runs them on every PR to record the perf trajectory
(JSON artifacts) and to catch crashes, not regressions.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.parallel import MachineSpec, ReplicatedDataModel, calibrate_step
from repro.tb import GSPSilicon


@pytest.fixture(autouse=True)
def bench_metrics(request):
    """Emit a per-benchmark ``repro.obs`` metrics snapshot.

    Inert unless ``BENCH_METRICS_DIR`` is set (the CI bench-smoke job
    sets it): then each benchmark runs against a fresh, enabled metrics
    registry whose snapshot is written to
    ``$BENCH_METRICS_DIR/<test-name>.json`` at teardown —
    ``tools/check_metrics.py`` gates the A8 snapshot's cache hit rates.
    Counter/histogram updates are a dict lookup plus a float add, far
    below the benchmarks' measurement noise.
    """
    out_dir = os.environ.get("BENCH_METRICS_DIR")
    if not out_dir:
        yield
        return
    from repro.obs import metrics as _metrics
    from repro.obs.export import write_metrics_json

    old_registry = _metrics._swap_registry(_metrics.MetricsRegistry())
    old_enabled = _metrics._ENABLED
    _metrics._ENABLED = True
    try:
        yield
    finally:
        _metrics._ENABLED = old_enabled
        registry = _metrics._swap_registry(old_registry)
        os.makedirs(out_dir, exist_ok=True)
        name = re.sub(r"[^\w.-]+", "_", request.node.name)
        write_metrics_json(os.path.join(out_dir, f"{name}.json"), registry)


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="tiny benchmark smoke mode: small systems, no performance "
             "assertions (crash detection only)")


@pytest.fixture(scope="session")
def quick(request) -> bool:
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def calibration():
    """Measured host calibration on 8→64-atom diamond Si."""
    return calibrate_step(GSPSilicon(), sizes=(1, 2), repeats=2)


@pytest.fixture(scope="session")
def paragon_model(calibration):
    return ReplicatedDataModel(calibration, MachineSpec.paragon())


@pytest.fixture(scope="session")
def modern_model(calibration):
    return ReplicatedDataModel(calibration, MachineSpec.modern())

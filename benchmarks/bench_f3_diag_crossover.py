"""F3 — Replicated-LAPACK vs distributed-Jacobi diagonalisation crossover.

The diagonalisation-strategy figure: the distributed Jacobi solver pays a
~10× flop penalty (sweeps × 12n³ vs 10n³ once) but divides by P; the
replicated solver is flop-optimal but serial.  Expected shape: a
crossover processor count P* above which distribution wins, with P*
dropping as the matrix grows; plus the *executable* round-robin Jacobi
validating the sweep count the model charges.
"""

import numpy as np

from repro.bench import print_table
from repro.parallel import MachineSpec
from repro.parallel.jacobi import distributed_jacobi_model, round_robin_jacobi
from repro.tb.eigensolvers import solve_eigh

SIZES = (256, 864, 2048)       # orbitals (64 / 216 / 512 Si atoms)
PROCS = (1, 4, 16, 64, 256)


def replicated_time(n, machine):
    return 10.0 * n**3 / machine.flops


def test_f3_crossover(benchmark):
    machine = MachineSpec.paragon()

    # sweep count measured from the executable round-robin algorithm
    rng = np.random.default_rng(0)
    a = rng.normal(size=(96, 96))
    H = 0.5 * (a + a.T)
    eps, _, sweeps = round_robin_jacobi(H, n_blocks=8)
    ref, _ = solve_eigh(H)
    np.testing.assert_allclose(eps, ref, atol=1e-8)
    print(f"\nround-robin Jacobi (n=96, 8 blocks): {sweeps} sweeps, "
          f"max eigenvalue error {np.max(np.abs(eps - ref)):.2e}")

    rows = []
    crossover = {}
    for n in SIZES:
        t_rep = replicated_time(n, machine)
        ts = [distributed_jacobi_model(n, p, machine, sweeps=sweeps)["time"]
              for p in PROCS]
        rows.append([n, t_rep] + ts)
        cross = next((p for p, t in zip(PROCS, ts) if t < t_rep), None)
        crossover[n] = cross

    print_table(
        f"F3: diagonalisation time (s), replicated vs distributed Jacobi "
        f"({sweeps} sweeps)",
        ["n_orb", "replicated"] + [f"dist P={p}" for p in PROCS],
        rows, float_fmt="{:.4g}")
    print("crossover P*:", crossover)

    # --- shape assertions -------------------------------------------------
    assert crossover[2048] is not None, "large matrices must cross over"
    assert crossover[2048] <= 64
    if crossover[256] is not None:
        assert crossover[256] >= crossover[2048]

    benchmark.pedantic(lambda: round_robin_jacobi(H, n_blocks=8),
                       rounds=2, iterations=1)

"""A8 — The MD fast path: persistent state reuse on vs off.

PR 1's O(N) engine rebuilt its entire per-step machinery — neighbour
lists, sparse Hamiltonian, localization regions, Lanczos spectral
bounds, the chemical-potential search, and *two* Chebyshev passes — from
scratch every MD step.  The fast path keeps all of that as persistent
calculator state (:mod:`repro.state`) and collapses the electronic solve
to one *fused* Chebyshev pass with a μ-Taylor correction
(:func:`repro.linscale.foe_local.solve_density_regions_fused`).

This benchmark drives the same ≥500-atom NVE trajectory with state reuse
on and off and asserts the PR's acceptance criteria:

1. ≥ 2× per-MD-step speedup with reuse on,
2. max per-atom force discrepancy < 1e-8 between the two paths at
   identical configurations (the fast path must be an optimization, not
   an approximation knob).

Settings note: kT = 0.35 eV / order 220 is the converged regime for the
GSP-Si spectral width — the expansion is then insensitive to the cached
(vs freshly recomputed) spectral window far below the 1e-8 bar.
"""

import copy
import time

import numpy as np

from repro import obs
from repro.bench import print_table, silicon_supercell
from repro.linscale import LinearScalingCalculator
from repro.md import MDDriver, VelocityVerlet, maxwell_boltzmann_velocities
from repro.tb import GSPSilicon

KT = 0.35
ORDER = 220
MULTIPLIER = 4          # 512 atoms
TEMPERATURE = 600.0
WARMUP_STEPS = 1
MEASURE_STEPS = 4


def test_a8_md_fastpath_speedup(benchmark, quick):
    multiplier = 2 if quick else MULTIPLIER     # 64 vs 512 atoms
    order = 120 if quick else ORDER
    measure_steps = 2 if quick else MEASURE_STEPS
    at_fast = silicon_supercell(multiplier, rattle_amp=0.03, seed=13)
    maxwell_boltzmann_velocities(at_fast, TEMPERATURE, seed=7)
    at_cold = copy.deepcopy(at_fast)
    natoms = len(at_fast)
    assert quick or natoms >= 500

    fast = LinearScalingCalculator(GSPSilicon(), kT=KT, order=order,
                                   reuse=True)
    cold = LinearScalingCalculator(GSPSilicon(), kT=KT, order=order,
                                   reuse=False)

    # interleave the two trajectories step by step so container CPU
    # throttling / load drift hits both paths alike, and use best-of-N
    # per path — robust per-step cost on a noisy shared box
    md_fast = MDDriver(at_fast, fast, VelocityVerlet(dt=1.0))
    md_cold = MDDriver(at_cold, cold, VelocityVerlet(dt=1.0))
    md_fast.run(WARMUP_STEPS)
    md_cold.run(WARMUP_STEPS)
    t_fast, t_cold = [], []
    for _ in range(measure_steps):
        t0 = time.perf_counter()
        md_fast.run(1)
        t_fast.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        md_cold.run(1)
        t_cold.append(time.perf_counter() - t0)
    speedup = float(min(t_cold) / min(t_fast))

    # force agreement at the fast path's final configuration: evaluate the
    # same positions through a *fresh* rebuild-everything calculator
    f_fast = fast.compute(at_fast, forces=True)["forces"]
    ref = LinearScalingCalculator(GSPSilicon(), kT=KT, order=order,
                                  reuse=False)
    f_ref = ref.compute(at_fast, forces=True)["forces"]
    fmax_diff = float(np.abs(f_fast - f_ref).max())

    rep = fast.state_report()
    rows = [
        ["reuse on", np.mean(t_fast), min(t_fast),
         rep["foe"]["fused"], rep["neighbors"]["reused"]],
        ["reuse off", np.mean(t_cold), min(t_cold), 0, 0],
    ]
    print_table(
        f"A8: seconds per MD step, {natoms}-atom Si (kT={KT}, K={order})",
        ["path", "mean s/step", "best s/step", "fused solves",
         "NL reuses"], rows, float_fmt="{:.3f}")
    print(f"speedup (cold/fast): {speedup:.2f}x")
    print(f"max |F_fast - F_cold|: {fmax_diff:.3e} eV/Å")
    print(f"fast-path report: {rep}")

    # -- acceptance criteria (perf bar skipped in --quick smoke mode) ------
    if not quick:
        assert speedup >= 2.0, f"fast path only {speedup:.2f}x faster"
        assert fmax_diff < 1e-8, f"force discrepancy {fmax_diff:.2e}"
    else:
        # correctness still holds at smoke sizes, just with slack for the
        # lower expansion order (the μ-Taylor remainder is order-limited)
        assert fmax_diff < 1e-5, f"force discrepancy {fmax_diff:.2e}"
    # the fast path must actually have been exercised
    assert rep["foe"]["fused"] >= measure_steps
    assert rep["hamiltonian"]["value_updates"] >= measure_steps

    # steady-state fused step as the headline per-step number
    state = {"rng": np.random.default_rng(3)}

    def one_step(calc=fast, atoms=at_fast):
        atoms.positions += state["rng"].normal(0.0, 0.003,
                                               atoms.positions.shape)
        calc.compute(atoms, forces=True)

    benchmark.pedantic(one_step, rounds=2, iterations=1)


#: Localization radius for the backend benchmark — the paper's first+
#: second-neighbour-shell regions (17 atoms, 68 orbitals in Si), where
#: the per-region GEMMs are small enough that interpreter dispatch is a
#: real cost and shape bucketing pays.  At the repo's conservative
#: default (6.24 Å, 47-atom regions) the per-region loop already keeps
#: each block L2-resident and saturates the skinny GEMM, so there is
#: nothing left for batching to win on a single core.
BACKEND_R_LOC = 4.2


def test_a8_backend_batched_speedup(benchmark, quick):
    """Stacked-GEMM region backend vs the per-region loop, same fast path.

    Both calculators run the identical warm fused MD step (state reuse
    on); only the array backend differs.  Interleaved stepping and
    best-of-N timing for the same container-throttling robustness as the
    reuse benchmark above.  The speedup lands in the metrics snapshot as
    the ``foe.backend_speedup`` gauge so the CI bench-smoke job can gate
    it (``tools/check_metrics.py --min-backend-speedup``).
    """
    multiplier = 2 if quick else MULTIPLIER     # 64 vs 512 atoms
    order = 120 if quick else ORDER
    measure_steps = 2 if quick else MEASURE_STEPS
    at_bat = silicon_supercell(multiplier, rattle_amp=0.03, seed=17)
    maxwell_boltzmann_velocities(at_bat, TEMPERATURE, seed=11)
    at_loop = copy.deepcopy(at_bat)
    natoms = len(at_bat)
    assert quick or natoms >= 500

    batched = LinearScalingCalculator(GSPSilicon(), kT=KT, order=order,
                                      r_loc=BACKEND_R_LOC, reuse=True,
                                      backend="numpy_batched")
    loop = LinearScalingCalculator(GSPSilicon(), kT=KT, order=order,
                                   r_loc=BACKEND_R_LOC, reuse=True,
                                   backend="numpy_loop")

    md_bat = MDDriver(at_bat, batched, VelocityVerlet(dt=1.0))
    md_loop = MDDriver(at_loop, loop, VelocityVerlet(dt=1.0))
    md_bat.run(WARMUP_STEPS)
    md_loop.run(WARMUP_STEPS)
    t_bat, t_loop = [], []
    for _ in range(measure_steps):
        t0 = time.perf_counter()
        md_bat.run(1)
        t_bat.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        md_loop.run(1)
        t_loop.append(time.perf_counter() - t0)
    speedup = float(min(t_loop) / min(t_bat))
    obs.gauge_set("foe.backend_speedup", speedup)

    # backend parity at the batched trajectory's final configuration —
    # the batched path must be an optimization, not an approximation knob
    f_bat = batched.compute(at_bat, forces=True)["forces"]
    f_loop = loop.compute(copy.deepcopy(at_bat), forces=True)["forces"]
    fmax_diff = float(np.abs(f_bat - f_loop).max())

    rows = [
        ["numpy_batched", np.mean(t_bat), min(t_bat)],
        ["numpy_loop", np.mean(t_loop), min(t_loop)],
    ]
    print_table(
        f"A8: seconds per warm MD step by backend, {natoms}-atom Si "
        f"(kT={KT}, K={order})",
        ["backend", "mean s/step", "best s/step"], rows, float_fmt="{:.3f}")
    print(f"speedup (loop/batched): {speedup:.2f}x")
    print(f"max |F_batched - F_loop|: {fmax_diff:.3e} eV/Å")

    assert fmax_diff < 1e-8, f"backend force discrepancy {fmax_diff:.2e}"
    if not quick:
        # whole-step ratio: the solve itself runs 1.5-4x faster batched
        # (fused/moments at these shapes) but the step also carries the
        # backend-independent H update + force assembly; 1.38x measured
        # quiet on a single-core container, floored with headroom
        assert speedup >= 1.2, f"batched backend only {speedup:.2f}x faster"

    step_rng = np.random.default_rng(5)

    def one_step(calc=batched, atoms=at_bat, rng=step_rng):
        atoms.positions += rng.normal(0.0, 0.003, atoms.positions.shape)
        calc.compute(atoms, forces=True)

    benchmark.pedantic(one_step, rounds=2, iterations=1)

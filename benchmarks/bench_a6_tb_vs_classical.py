"""A6 — Ablation: tight-binding vs classical MD cost (the 10²–10³× table).

Every TBMD paper justifies its parallelisation budget with this number:
the per-step cost ratio between TB (diagonalisation-bound) and a
classical potential (Stillinger–Weber here) on identical structures.
Expected shape: ratio ≫ 10 already at 64 atoms and *growing* with N
(O(N³) vs O(N)) — while both models agree that the crystal is bound,
four-coordinated silicon (the accuracy half of the trade-off is F6/F9).
"""

import time


from repro.bench import print_table, silicon_supercell
from repro.classical import StillingerWeber
from repro.geometry import rattle
from repro.tb import GSPSilicon, TBCalculator

MULTIPLIERS = (1, 2, 3)


def step_cost(calc_factory, at, repeats=3):
    calc = calc_factory()
    calc.compute(at, forces=True)
    t0 = time.perf_counter()
    for k in range(repeats):
        calc.compute(rattle(at, 0.02, seed=k), forces=True)
    return (time.perf_counter() - t0) / repeats


def test_a6_tb_vs_classical(benchmark):
    rows = []
    ratios = []
    for m in MULTIPLIERS:
        at = silicon_supercell(m, rattle_amp=0.05, seed=21)
        t_tb = step_cost(lambda: TBCalculator(GSPSilicon()), at)
        t_sw = step_cost(StillingerWeber, at)
        e_tb = TBCalculator(GSPSilicon()).get_potential_energy(at) / len(at)
        e_sw = StillingerWeber().get_potential_energy(at) / len(at)
        rows.append([len(at), t_tb * 1e3, t_sw * 1e3, t_tb / t_sw,
                     e_tb - (-8.1), e_sw])
        ratios.append(t_tb / t_sw)

    print_table(
        "A6: TB vs classical per-step cost "
        "(E columns: cohesive-scale energies, eV/atom)",
        ["N", "t_TB (ms)", "t_SW (ms)", "ratio", "E_coh TB", "E_SW"],
        rows, float_fmt="{:.4g}")

    # --- shape assertions -------------------------------------------------
    # (both implementations are Python; a compiled classical code would
    # widen the ratio by another ~10²× constant — the era's quoted
    # 10²–10³× — but the *growth with N* is the machine-independent claim)
    assert ratios[-1] > 5.0, "TB must cost ≫ classical at 216 atoms"
    assert ratios[-1] > ratios[0], "the gap must widen with N (N³ vs N)"
    # both models bind the rattled crystal
    for row in rows:
        assert row[4] < -3.0 and row[5] < -3.0

    at = silicon_supercell(2, rattle_amp=0.05, seed=21)
    benchmark.pedantic(lambda: StillingerWeber().compute(at, forces=True),
                       rounds=5, iterations=1)

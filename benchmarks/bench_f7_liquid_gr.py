"""F7 — Liquid-silicon pair correlation function g(r).

The Wang/Chan/Ho-style melt validation: superheat a Si supercell to
break the crystal, cool to the sampling temperature and histogram g(r).
Liquid silicon is a *metal*, so the calculator runs with Fermi smearing
at the ionic temperature — exactly the electronic-temperature protocol
liquid-Si TBMD used.

Expected shape (experiment / ab-initio liquid Si): first peak near
2.4–2.5 Å, crystalline second shell (3.84 Å) strongly suppressed,
coordination above the fourfold crystal value (experiment ≈6; minimal-
basis TB is known to under-coordinate — >4 at fixed crystal density is
the reproducible TB-level signature), and diffusive MSD growth.
"""

import numpy as np

from repro.analysis import mean_squared_displacement, radial_distribution
from repro.analysis.rdf import coordination_from_rdf, first_peak
from repro.bench import print_table, silicon_supercell
from repro.md import (
    MDDriver, NoseHooverChain, TrajectoryRecorder, maxwell_boltzmann_velocities,
)
from repro.tb import GSPSilicon, TBCalculator
from repro.units import KB

T_SUPERHEAT = 5500.0   # break the 64-atom crystal quickly
T_SAMPLE = 3500.0
R_SHELL = 3.1          # fixed first-shell integration bound (Å)


def test_f7_liquid_structure(benchmark):
    at = silicon_supercell(2, rattle_amp=0.3, seed=77)
    maxwell_boltzmann_velocities(at, T_SUPERHEAT, seed=77)
    calc = TBCalculator(GSPSilicon(), kT=KB * T_SAMPLE)
    md = MDDriver(at, calc, NoseHooverChain(dt=1.0, temperature=T_SUPERHEAT,
                                            tau=40.0))
    md.run(300)                               # melt
    md.integrator.target_temperature = T_SAMPLE
    md.run(150)                               # cool + equilibrate

    rec = TrajectoryRecorder()
    md.add_observer(rec, interval=10)
    md.run(350)                               # production

    frames = [rec.trajectory.atoms_at(i) for i in range(len(rec.trajectory))]
    r, g = radial_distribution(frames[5:], r_max=5.5, nbins=110)
    peak = first_peak(r, g, r_window=(2.0, 3.0))
    density = len(at) / at.cell.volume
    coord = coordination_from_rdf(r, g, density, r_min=R_SHELL)
    g_peak = float(g[np.argmin(np.abs(r - peak))])
    g_second = float(g[np.argmin(np.abs(r - 3.84))])

    pos = rec.trajectory.positions()
    msd = mean_squared_displacement(pos, origins=4)
    msd_growth = float(msd[len(msd) // 2] - msd[2])

    print_table(
        f"F7: liquid Si structure at {T_SAMPLE:.0f} K "
        f"(Si64, kT_el = k_B·T_ion)",
        ["quantity", "value", "reference shape"],
        [["g(r) first peak (Å)", peak, "2.4–2.5 (liquid Si)"],
         [f"coordination (r < {R_SHELL})", coord, "> 4 (crystal = 4)"],
         ["g at first peak", g_peak, "~2.5"],
         ["crystal 2nd-shell g(3.84)", g_second,
          "suppressed (≲ 0.7 × peak)"],
         ["MSD growth (Å²)", msd_growth, "> 0.1 (diffusive)"]],
        float_fmt="{:.3f}")

    # --- shape assertions -------------------------------------------------
    assert 2.2 < peak < 2.75
    assert coord > 4.0
    assert g_second < 0.7 * g_peak, "crystalline second shell must wash out"
    assert msd_growth > 0.1, "the sample must be diffusive (molten)"

    benchmark.pedantic(
        lambda: radial_distribution(frames[-3:], r_max=5.5, nbins=110),
        rounds=2, iterations=1)

"""F1 — Strong-scaling speedup vs processor count (replicated data).

Reproduces the headline scaling figure on a Paragon-class machine model
calibrated with measured host phase timings (see docs/architecture.md substitution
table).  Expected shape:

* with the *replicated* eigensolver, speedup saturates at the Amdahl
  ceiling set by the serial diagonalisation fraction — brutal for TBMD;
* with the *distributed* block-Jacobi solver, speedup keeps climbing and
  crosses the replicated curve at moderate P;
* larger systems scale better (more parallel work per byte moved).
"""


from repro.bench import print_table
from repro.parallel import strong_scaling
from repro.parallel.scaling import serial_fraction_estimate

PROCS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
SIZES = (64, 216, 512)


def test_f1_speedup_curves(paragon_model, benchmark):
    all_rows = []
    speedups = {}
    for n in SIZES:
        rows = strong_scaling(paragon_model, n, PROCS, diag="replicated")
        rows_d = strong_scaling(paragon_model, n, PROCS, diag="distributed")
        speedups[n] = ([r["speedup"] for r in rows],
                       [r["speedup"] for r in rows_d])
        for r, rd in zip(rows, rows_d):
            all_rows.append([n, r["nproc"], r["time"], r["speedup"],
                             rd["time"], rd["speedup"]])

    print_table(
        "F1: strong scaling, Paragon-class model "
        "(rep = replicated LAPACK diag, dist = distributed Jacobi)",
        ["N", "P", "t_rep (s)", "S_rep", "t_dist (s)", "S_dist"],
        all_rows, float_fmt="{:.4g}")

    s_frac = serial_fraction_estimate(paragon_model, 216)
    print(f"\nAmdahl serial fraction (N=216): {s_frac:.3f} "
          f"→ ceiling {1.0 / s_frac:.2f}")

    # --- shape assertions -------------------------------------------------
    s_rep, s_dist = speedups[216]
    # replicated saturates at the Amdahl ceiling
    assert s_rep[-1] <= 1.0 / s_frac * 1.05
    assert s_rep[-1] - s_rep[-2] < 0.05 * s_rep[-1]
    # distributed overtakes replicated at scale
    assert s_dist[-1] > s_rep[-1]
    # but loses at P=1 (Jacobi flop penalty)
    assert s_dist[0] < 1.0
    # larger N scales at least as well at max P (distributed arm)
    assert speedups[512][1][-1] >= speedups[64][1][-1]

    benchmark.pedantic(
        lambda: strong_scaling(paragon_model, 216, PROCS), rounds=3,
        iterations=1)

"""A2 — Ablation: eigensolver comparison on real TB Hamiltonians.

LAPACK (the production path) vs the from-scratch Householder+QL (the
era's serial algorithm) vs cyclic Jacobi (the distributable algorithm).
Expected shape: identical spectra to ~1e-8; LAPACK fastest; Jacobi pays
its ~10× flop penalty — the quantitative basis of the F3 crossover model.
"""

import time

import numpy as np

from repro.bench import print_table, silicon_supercell
from repro.neighbors import neighbor_list
from repro.tb import GSPSilicon
from repro.tb.eigensolvers import householder_ql_eigh, jacobi_eigh, solve_eigh
from repro.tb.hamiltonian import build_hamiltonian

SIZES = (1, 2)      # 32 / 256 orbitals


def tb_matrix(multiplier):
    at = silicon_supercell(multiplier, rattle_amp=0.05, seed=3)
    model = GSPSilicon()
    H, _ = build_hamiltonian(at, model, neighbor_list(at, model.cutoff))
    return H


def timed(fn, H):
    t0 = time.perf_counter()
    eps, C = fn(H)
    return time.perf_counter() - t0, eps, C


def test_a2_eigensolver_ablation(benchmark):
    rows = []
    for m in SIZES:
        H = tb_matrix(m)
        n = H.shape[0]
        t_lap, e_lap, _ = timed(solve_eigh, H)
        t_hh, e_hh, _ = timed(householder_ql_eigh, H)
        t_jac, e_jac, _ = timed(jacobi_eigh, H)
        err_hh = float(np.max(np.abs(e_hh - e_lap)))
        err_jac = float(np.max(np.abs(e_jac - e_lap)))
        rows.append([n, t_lap, t_hh, t_jac, err_hh, err_jac])

    print_table(
        "A2: eigensolver ablation on TB Hamiltonians",
        ["n", "t LAPACK (s)", "t HH+QL (s)", "t Jacobi (s)",
         "err HH", "err Jacobi"],
        rows, float_fmt="{:.3e}")

    # --- shape assertions -------------------------------------------------
    for _n, t_lap, t_hh, t_jac, err_hh, err_jac in rows:
        assert err_hh < 1e-7
        assert err_jac < 1e-7
        assert t_lap <= t_hh + 1e-4
        assert t_lap <= t_jac + 1e-4

    H = tb_matrix(2)
    benchmark.pedantic(lambda: solve_eigh(H), rounds=5, iterations=1)

"""F4 — NVE energy conservation vs time step.

The trust-establishing figure every TBMD paper shows: total-energy drift
of microcanonical dynamics over a trajectory.  Expected shape: drift
< 1 part in 10⁴ at dt = 1 fs (the era's quoted standard), with the
velocity-Verlet O(dt²) scaling visible across the dt sweep.
"""

import numpy as np

from repro.bench import print_table, silicon_supercell
from repro.md import MDDriver, ThermoLog, VelocityVerlet, maxwell_boltzmann_velocities
from repro.tb import GSPSilicon, TBCalculator

DTS = (0.5, 1.0, 2.0)
SIM_TIME_FS = 120.0
TEMP = 1000.0


def drift_for(dt: float) -> tuple[float, ThermoLog]:
    at = silicon_supercell(2)
    maxwell_boltzmann_velocities(at, TEMP, seed=42)
    log = ThermoLog()
    md = MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=dt),
                  observers=[log])
    md.run(int(SIM_TIME_FS / dt))
    return log.conserved_drift(), log


def test_f4_energy_conservation(benchmark):
    results = {dt: drift_for(dt) for dt in DTS}
    print_table(
        f"F4: NVE conserved-energy drift, Si64 at {TEMP:.0f} K, "
        f"{SIM_TIME_FS:.0f} fs",
        ["dt (fs)", "max |ΔE/E₀|", "⟨T⟩ (K)"],
        [[dt, results[dt][0], float(np.mean(results[dt][1].temperature))]
         for dt in DTS],
        float_fmt="{:.3e}")

    # --- shape assertions -------------------------------------------------
    assert results[1.0][0] < 1e-4, "the era's 1-in-10⁴ standard at dt=1 fs"
    drifts = [results[dt][0] for dt in DTS]
    assert drifts[0] < drifts[2], "smaller dt must conserve better"
    # O(dt²): the 4× step should cost ≳ 4× the drift (generous bound)
    assert drifts[2] / max(drifts[0], 1e-16) > 3.0

    def short_nve():
        at = silicon_supercell(2)
        maxwell_boltzmann_velocities(at, TEMP, seed=1)
        MDDriver(at, TBCalculator(GSPSilicon()), VelocityVerlet(dt=1.0)
                 ).run(10)

    benchmark.pedantic(short_nve, rounds=2, iterations=1)

"""F8 — Carbon TB validation and the nanotube application workload.

Two panels:

* bulk validation of the XWCH carbon model: relaxed graphene and diamond
  bond lengths and the graphene/diamond energy near-degeneracy — the
  published model's signature results;
* application-class workload: CG relaxation of a finite open (10,0)
  zig-zag nanotube (frozen base ring) — the starting configuration of
  the classic tube-closure MD studies — checking the tube stays intact,
  hexagonal and at graphene-like bond lengths.
"""


from repro.analysis import bond_statistics, ring_statistics
from repro.bench import print_table
from repro.geometry import diamond_cubic, graphene_sheet, nanotube
from repro.neighbors import neighbor_list
from repro.relax import conjugate_gradient
from repro.tb import TBCalculator, XuCarbon

ATOM_REF = 2 * (-2.99) + 2 * 3.71 + (-2.5909765118191)   # band ref + f(0)


def relaxed_bond_length(atoms, r_cut):
    calc = TBCalculator(XuCarbon())
    res = conjugate_gradient(atoms, calc, fmax=0.03, max_steps=400)
    assert res.converged, res
    nl = neighbor_list(atoms, r_cut)
    return float(nl.distances.mean()), res.energy / len(atoms)


def test_f8_carbon_validation_and_nanotube(benchmark):
    # --- bulk panel ---------------------------------------------------------
    gra = graphene_sheet(2, 2, cc=1.44)       # start off-equilibrium
    cc_gra, _ = relaxed_bond_length(gra, 1.7)
    dia = diamond_cubic("C")
    cc_dia, _ = relaxed_bond_length(dia, 1.75)

    e_gra = TBCalculator(XuCarbon(), kpts=(4, 4, 1), kT=0.1
                         ).get_potential_energy(graphene_sheet(2, 2)) / 16
    e_dia = TBCalculator(XuCarbon(), kpts=4, kT=0.1
                         ).get_potential_energy(diamond_cubic("C")) / 8

    # --- nanotube panel -------------------------------------------------------
    tube = nanotube(10, 0, cells=3, periodic=False)
    z = tube.positions[:, 2]
    tube.fixed[z < z.min() + 0.4] = True
    hex_before = ring_statistics(tube, 1.65).get(6, 0)
    res = conjugate_gradient(tube, TBCalculator(XuCarbon()), fmax=0.05,
                             max_steps=600)
    stats = bond_statistics(tube, 1.7)
    rings = ring_statistics(tube, 1.7)

    print_table(
        "F8: XWCH carbon validation + (10,0) nanotube workload",
        ["quantity", "value", "reference"],
        [["graphene bond (Å)", cc_gra, "1.42 (expt 1.421)"],
         ["diamond bond (Å)", cc_dia, "1.544 (expt 1.545)"],
         ["E(graphene) − E(diamond) (eV/at)", e_gra - e_dia,
          "≈ −0.03 (near-degenerate)"],
         ["E_coh graphene (eV/at)", e_gra - ATOM_REF, "≈ −7.4"],
         ["tube atoms", len(tube), "120 + frozen ring"],
         ["tube relax converged", res.converged, "True"],
         ["tube hexagons", rings.get(6, 0), f">= {hex_before - 2}"],
         ["tube mean bond (Å)", stats["mean_bond_length"], "≈ 1.42"]],
        float_fmt="{:.4g}")

    # --- shape assertions -------------------------------------------------
    assert cc_gra == pytest.approx(1.42, abs=0.03)
    assert cc_dia == pytest.approx(1.544, abs=0.04)
    assert abs(e_gra - e_dia) < 0.12, "graphene/diamond near-degeneracy"
    assert e_gra - ATOM_REF == pytest.approx(-7.4, abs=0.4)
    assert res.converged
    assert rings.get(6, 0) >= hex_before - 2
    assert stats["mean_bond_length"] == pytest.approx(1.42, abs=0.05)
    assert stats["max_coordination"] == 3

    benchmark.pedantic(
        lambda: TBCalculator(XuCarbon()).get_forces(tube),
        rounds=2, iterations=1)


import pytest  # noqa: E402
